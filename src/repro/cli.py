"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro list                     # available workload models
    repro run WORKLOAD [options]   # one stream-buffer simulation
    repro sweep [options]          # (workload x config) grid, parallel
    repro exhibit NAME [...]       # regenerate a paper table/figure
    repro profile WORKLOAD         # trace statistics of a model
    repro compare WORKLOAD         # streams vs related-work baselines
    repro timing WORKLOAD          # price the stream vs L2 designs
    repro serve [options]          # always-on simulation service (HTTP)
    repro check [options]          # differential check vs golden oracles
    repro obs summarize MANIFEST   # digest a run manifest (slow cells, phases)
    repro top [--url URL]          # live service dashboard (polls /v1/debug)

Every exhibit prints measured values beside the paper's published ones.
``sweep`` and ``exhibit`` accept ``--jobs N`` (process-pool fan-out) and
``--trace-store PATH`` (persistent miss-trace/result store, so repeated
invocations never recompute an L1 simulation — see docs/api.md,
"Scaling sweeps").  ``sweep``, ``exhibit`` and ``compare`` additionally
accept ``--trace-out FILE`` (Perfetto-loadable span trace) and
``--manifest DIR`` (JSON run manifest) — see docs/observability.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.core.config import StreamConfig, StrideDetector
from repro.reporting import experiments
from repro.sim.runner import MissTraceCache, run_result
from repro.sim.vector import ENGINE_ENV_VAR, ENGINES
from repro.trace.stats import profile_trace
from repro.trace.store import TraceStore
from repro.workloads import all_benchmarks, get_workload

__all__ = ["main", "build_parser"]

_EXHIBITS = experiments.EXHIBITS


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stream buffers as a secondary cache replacement (ISCA '94) — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workload models")

    run = sub.add_parser("run", help="simulate one workload under one stream config")
    run.add_argument("workload", help="workload name (see `repro list`)")
    run.add_argument("--streams", type=int, default=10, help="number of stream buffers")
    run.add_argument("--depth", type=int, default=2, help="stream depth")
    run.add_argument("--scale", type=float, default=1.0, help="input scale factor")
    run.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    run.add_argument(
        "--filter",
        dest="filter_entries",
        type=int,
        default=0,
        metavar="N",
        help="unit-stride filter entries (0 = no filter)",
    )
    run.add_argument(
        "--stride-detector",
        choices=StrideDetector.ALL,
        default=StrideDetector.NONE,
        help="non-unit stride scheme",
    )
    run.add_argument("--czone-bits", type=int, default=19, help="concentration zone bits")

    sweep = sub.add_parser(
        "sweep", help="run a (workload x stream-count) grid through the sweep engine"
    )
    sweep.add_argument(
        "--workloads",
        nargs="+",
        default=["embar", "mgrid", "cgm", "buk"],
        metavar="NAME",
        help="workload models to sweep (default: embar mgrid cgm buk)",
    )
    sweep.add_argument(
        "--n-streams",
        nargs="+",
        type=int,
        default=list(range(1, 11)),
        metavar="N",
        help="stream counts forming the config axis (default: 1..10)",
    )
    sweep.add_argument("--scale", type=float, default=1.0, help="input scale factor")
    sweep.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    sweep.add_argument(
        "--filter",
        dest="filter_entries",
        type=int,
        default=0,
        metavar="N",
        help="unit-stride filter entries for the base config (0 = no filter)",
    )
    sweep.add_argument(
        "--analytic",
        action="store_true",
        help="predict the grid from one miss-spectrum pass per workload "
        "instead of replaying every cell; the best predicted cell is "
        "witnessed by real replay (see docs/analytic.md)",
    )
    sweep.add_argument(
        "--mechanism",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="sweep these secondary mechanisms instead of the stream-count "
        "axis (e.g. streams victim:16 misscache:16 victim:16+streams); "
        "see docs/mechanisms.md",
    )
    _add_engine_flags(sweep)
    _add_obs_flags(sweep)

    exhibit = sub.add_parser("exhibit", help="regenerate a paper table/figure")
    exhibit.add_argument("name", choices=sorted(_EXHIBITS), help="exhibit to run")
    exhibit.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to these benchmarks (default: the paper's set)",
    )
    _add_engine_flags(exhibit)
    _add_obs_flags(exhibit)

    profile = sub.add_parser("profile", help="show trace statistics of a workload model")
    profile.add_argument("workload")
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--locality",
        action="store_true",
        help="also print the miss stream's stack-distance locality profile "
        "(exact FA LRU hit-rate curve; see docs/analytic.md)",
    )
    profile.add_argument(
        "--streams",
        action="store_true",
        help="also print the miss stream's run-length/stride spectrum and "
        "the closed-form stream-model predictions for the paper's "
        "configurations (see docs/analytic.md)",
    )

    compare = sub.add_parser(
        "compare", help="compare streams against the related-work prefetch baselines"
    )
    compare.add_argument("workload")
    compare.add_argument("--scale", type=float, default=1.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--analytic",
        action="store_true",
        help="run the analytically screened streams-vs-L2 search instead "
        "(Table 4 fast path; see docs/analytic.md)",
    )
    compare.add_argument(
        "--mechanism",
        default=None,
        metavar="SPEC",
        help="find the minimum matching L2 for this secondary mechanism "
        "(e.g. victim:16, misscache:16, victim:16+streams) instead of "
        "the baseline table; combines with --analytic "
        "(see docs/mechanisms.md)",
    )
    compare.add_argument(
        "--trace-store",
        default=None,
        metavar="PATH",
        help="persistent store for miss traces and locality profiles "
        "(--analytic only)",
    )
    _add_obs_flags(compare)

    timing = sub.add_parser(
        "timing", help="price the stream design against a conventional L2 design"
    )
    timing.add_argument("workload")
    timing.add_argument("--scale", type=float, default=1.0)
    timing.add_argument(
        "--l2-kb", type=int, default=512, help="conventional design's L2 capacity (KB)"
    )
    timing.add_argument(
        "--bandwidth",
        type=float,
        default=2.0,
        help="stream design's memory-bandwidth advantage (x)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the asyncio simulation service (see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8077, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes in the shared pool (1 = in-process)",
    )
    serve.add_argument(
        "--trace-store",
        default=None,
        metavar="PATH",
        help="persistent miss-trace/result store shared by all workers",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admitted-request bound; excess requests are rejected with 429",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="micro-batcher flush threshold (cells per run_grid call)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batcher linger before flushing a partial batch",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="default per-request deadline (seconds)",
    )
    serve.add_argument(
        "--worker",
        action="store_true",
        help="run as a fleet worker (executes chunks, never dispatches)",
    )
    serve.add_argument(
        "--workers",
        default=None,
        metavar="URL[,URL...]",
        help="comma-separated worker base URLs to dispatch to",
    )
    serve.add_argument(
        "--register",
        default=None,
        metavar="URL",
        help="frontend base URL to self-register with on start",
    )
    serve.add_argument(
        "--advertise",
        default=None,
        metavar="URL",
        help="base URL this server advertises (default: its bound address)",
    )
    serve.add_argument(
        "--fetch-policy",
        choices=("fallback", "require"),
        default="fallback",
        help="worker behaviour on a trace miss: recompute (fallback) or fail (require)",
    )
    serve.add_argument(
        "--fleet-inflight",
        type=int,
        default=4,
        metavar="N",
        help="chunk requests in flight per worker",
    )
    serve.add_argument(
        "--fleet-timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="per-attempt deadline of one dispatched chunk",
    )
    serve.add_argument(
        "--fleet-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per worker before failing a chunk over",
    )
    serve.add_argument(
        "--fleet-heartbeat",
        type=float,
        default=2.0,
        metavar="S",
        help="worker liveness poll period in seconds (0 disables)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="enable the span tracer at startup; the merged timeline is "
        "served back via GET /v1/trace (workers ship their spans with "
        "every chunk response)",
    )

    check = sub.add_parser(
        "check",
        help="differential check: optimized simulators vs golden oracles",
        description=(
            "Run randomized traces and configurations through both the "
            "optimized simulators and the deliberately-simple reference "
            "models in repro.check.oracle, reporting the first diverging "
            "event per seed (see docs/modeling.md, 'Differential "
            "correctness harness')."
        ),
    )
    check.add_argument(
        "--seeds", type=int, default=50, metavar="N", help="random seeds to check"
    )
    check.add_argument(
        "--seed-start", type=int, default=0, metavar="S", help="first seed (corpus offset)"
    )
    check.add_argument(
        "--events",
        type=int,
        default=2500,
        metavar="N",
        help="events per generated trace",
    )
    check.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the real-workload full-pipeline stages",
    )
    check.add_argument(
        "--registry-scale",
        type=float,
        default=0.05,
        metavar="F",
        help="scale for the registry workload stages",
    )
    check.add_argument(
        "--stages",
        default=None,
        metavar="LIST",
        help="comma-separated per-seed stages to run (default: "
        "l1,streams,victim,misscache,hybrid,analytic,analytic-streams,"
        "vector)",
    )
    check.add_argument(
        "--replay",
        default=None,
        metavar="STAGE:SEED",
        help="re-run one diverging stage (l1:SEED, streams:SEED, "
        "victim:SEED, misscache:SEED, hybrid:SEED, analytic:SEED or "
        "vector:SEED) and exit",
    )

    obs = sub.add_parser(
        "obs", help="inspect telemetry artifacts (see docs/observability.md)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="digest a run manifest: outcomes, slowest cells, phase times",
    )
    summarize.add_argument(
        "manifest", help="path to a manifest JSON written by --manifest DIR"
    )
    summarize.add_argument(
        "--top", type=int, default=10, metavar="N", help="slowest cells to show"
    )
    summarize.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json mirrors the text digest, for jq)",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running service's /v1/debug",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8077",
        help="service base URL (default: http://127.0.0.1:8077)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period in seconds",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )

    return parser


def _add_engine_flags(command: argparse.ArgumentParser) -> None:
    """The sweep-engine knobs shared by ``sweep`` and ``exhibit``."""
    command.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep engine (1 = in-process)",
    )
    command.add_argument(
        "--trace-store",
        default=None,
        metavar="PATH",
        help="persistent miss-trace/result store directory (reused across runs)",
    )
    command.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="replay engine: 'vector' (batch, the default) or 'scalar' "
        "(per-event reference loops); exported as REPRO_ENGINE so worker "
        "processes inherit it (see docs/vectorized.md)",
    )


def _add_obs_flags(command: argparse.ArgumentParser) -> None:
    """The telemetry knobs shared by ``sweep``, ``exhibit`` and ``compare``."""
    command.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON of this run's spans "
        "(load in Perfetto / chrome://tracing)",
    )
    command.add_argument(
        "--manifest",
        default=None,
        metavar="DIR",
        help="write a JSON run manifest (git SHA, per-cell outcomes, "
        "store IO, phase times) into DIR",
    )


class _ObsSession:
    """Per-invocation telemetry capture behind --trace-out/--manifest.

    Construction enables the process tracer (clearing any stale events)
    and snapshots the engine registry through a
    :class:`~repro.obs.manifest.ManifestBuilder`; :meth:`finish` drains
    the spans, restores the tracer, and writes whichever artifacts were
    requested.  With neither flag set, every method is a no-op and the
    tracer stays disabled (the zero-overhead default).

    An active session also mints one run-level ``trace_id`` and binds it
    for the invocation's duration, so every span the parent process
    records joins one trace; :meth:`tag` stamps the same id onto sweep
    tasks so spawn-pool workers join it too (the trace-out file then
    carries Perfetto flow arrows across all processes).
    """

    def __init__(self, args: argparse.Namespace, command: str):
        self.trace_out = getattr(args, "trace_out", None)
        self.manifest_dir = getattr(args, "manifest", None)
        self.active = bool(self.trace_out or self.manifest_dir)
        self.builder = None
        self.trace_id = None
        self._scope = None
        self._was_enabled = False
        if not self.active:
            return
        from repro.obs import ManifestBuilder, get_tracer, new_trace_id, trace_scope

        tracer = get_tracer()
        self._was_enabled = tracer.enabled
        tracer.enabled = True
        tracer.clear()
        self.trace_id = new_trace_id()
        self._scope = trace_scope(self.trace_id)
        self._scope.__enter__()
        self.builder = ManifestBuilder(command, argv=sys.argv[1:])

    def tag(self, tasks):
        """Stamp the run's trace id onto sweep tasks (no-op when inactive)."""
        if not self.active:
            return tasks
        import dataclasses

        return [dataclasses.replace(task, trace_id=self.trace_id) for task in tasks]

    def add_results(self, tasks, results) -> None:
        if self.builder is not None:
            self.builder.add_results(tasks, results)

    def set_meta(self, **entries) -> None:
        if self.builder is not None:
            self.builder.set_meta(**entries)

    def finish(self) -> None:
        if not self.active:
            return
        from repro.obs import get_tracer, write_chrome_trace

        tracer = get_tracer()
        events = tracer.drain()
        tracer.enabled = self._was_enabled
        if self._scope is not None:
            self._scope.__exit__(None, None, None)
            self._scope = None
        if self.trace_out:
            write_chrome_trace(self.trace_out, events)
            print(f"trace written   : {self.trace_out} ({len(events)} events)")
        if self.manifest_dir:
            path = self.builder.write(self.manifest_dir, span_events=events)
            print(f"manifest written: {path}")


def _cmd_list() -> int:
    print(f"{'name':12s} {'suite':8s} description")
    print("-" * 60)
    for info in all_benchmarks():
        print(f"{info.name:12s} {info.suite:8s} {info.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entries = args.filter_entries
    if args.stride_detector != StrideDetector.NONE and entries == 0:
        entries = 16  # the detector requires the unit filter in front
    config = StreamConfig(
        n_streams=args.streams,
        depth=args.depth,
        unit_filter_entries=entries,
        stride_detector=args.stride_detector,
        czone_bits=args.czone_bits,
    )
    result = run_result(args.workload, config, scale=args.scale, seed=args.seed)
    bw = result.streams.bandwidth
    print(f"workload        : {result.workload} (scale {result.scale:g})")
    print(f"trace length    : {result.l1.trace_length}")
    print(f"L1 miss rate    : {100 * result.l1.miss_rate:.2f}%  ({result.l1.misses} misses)")
    print(f"stream hit rate : {result.hit_rate_percent:.1f}%")
    print(f"extra bandwidth : {bw.eb_measured:.1f}% measured ({bw.eb_estimate:.1f}% by S*D/M)")
    print(f"prefetches      : {bw.prefetches_issued} issued, {bw.prefetches_used} used")
    row = result.streams.lengths.as_row()
    print("stream lengths  : " + "  ".join(f"{label}:{pct:.0f}%" for label, pct in
          zip(("1-5", "6-10", "11-15", "16-20", ">20"), row)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.reporting.tables import render_table
    from repro.sim.parallel import SweepTask, TaskError, run_grid
    from repro.sim.results import RunResult

    store = TraceStore(args.trace_store) if args.trace_store else None
    if args.mechanism:
        if args.analytic:
            print("--mechanism and --analytic are mutually exclusive", file=sys.stderr)
            return 2
        return _cmd_sweep_mechanisms(args, store)
    base = (
        StreamConfig.filtered(entries=args.filter_entries)
        if args.filter_entries
        else StreamConfig.jouppi()
    )
    values = sorted(set(args.n_streams))
    if args.analytic:
        return _cmd_sweep_analytic(args, base, values, store)
    tasks = [
        SweepTask(
            key=(name, n),
            workload=name,
            config=base.with_(n_streams=n),
            scale=args.scale,
            seed=args.seed,
        )
        for name in args.workloads
        for n in values
    ]
    obs = _ObsSession(args, "sweep")
    tasks = obs.tag(tasks)
    started = time.perf_counter()
    results = run_grid(tasks, jobs=args.jobs, store=store)
    elapsed = time.perf_counter() - started
    obs.add_results(tasks, results)

    by_key = {task.key: result for task, result in zip(tasks, results)}
    errors = [r for r in results if isinstance(r, TaskError)]
    rows = []
    for name in args.workloads:
        row: List = [name]
        for n in values:
            cell = by_key[(name, n)]
            row.append(cell.hit_rate_percent if isinstance(cell, RunResult) else None)
        rows.append(row)
    print(
        render_table(
            ["bench"] + [f"hit% @{n}" for n in values],
            rows,
            title=(
                f"Sweep: {len(args.workloads)} workloads x {len(values)} configs "
                f"(scale {args.scale:g}, jobs {args.jobs})"
            ),
        )
    )
    print(
        f"\n{len(tasks)} cells in {elapsed:.2f}s "
        f"({len(tasks) / elapsed:.1f} cells/s)"
        + (f"; store: {args.trace_store}" if store else "")
    )
    obs.finish()
    for error in errors:
        print(f"FAILED {error.key!r}: {error.error}", file=sys.stderr)
    return 1 if errors else 0


def _cmd_sweep_mechanisms(args, store) -> int:
    """The ``repro sweep --mechanism`` path: a (workload x mechanism)
    grid through the same parallel engine and persistent store."""
    from repro.mechanisms import mechanism_label, parse_mechanism_spec
    from repro.reporting.tables import render_table
    from repro.sim.parallel import SweepTask, TaskError, run_grid
    from repro.sim.results import RunResult

    try:
        mechs = [parse_mechanism_spec(spec) for spec in args.mechanism]
    except ValueError as exc:
        print(f"bad --mechanism: {exc}", file=sys.stderr)
        return 2
    labels = [mechanism_label(mech) for mech in mechs]
    tasks = [
        SweepTask(
            key=(name, label),
            workload=name,
            config=mech,
            scale=args.scale,
            seed=args.seed,
        )
        for name in args.workloads
        for label, mech in zip(labels, mechs)
    ]
    obs = _ObsSession(args, "sweep")
    tasks = obs.tag(tasks)
    started = time.perf_counter()
    results = run_grid(tasks, jobs=args.jobs, store=store)
    elapsed = time.perf_counter() - started
    obs.add_results(tasks, results)

    by_key = {task.key: result for task, result in zip(tasks, results)}
    errors = [r for r in results if isinstance(r, TaskError)]
    rows = []
    for name in args.workloads:
        row: List = [name]
        for label in labels:
            cell = by_key[(name, label)]
            row.append(cell.hit_rate_percent if isinstance(cell, RunResult) else None)
        rows.append(row)
    print(
        render_table(
            ["bench"] + [f"hit% {label}" for label in labels],
            rows,
            title=(
                f"Mechanism sweep: {len(args.workloads)} workloads x "
                f"{len(labels)} mechanisms (scale {args.scale:g}, jobs {args.jobs})"
            ),
        )
    )
    print(
        f"\n{len(tasks)} cells in {elapsed:.2f}s "
        f"({len(tasks) / elapsed:.1f} cells/s)"
        + (f"; store: {args.trace_store}" if store else "")
    )
    obs.finish()
    for error in errors:
        print(f"FAILED {error.key!r}: {error.error}", file=sys.stderr)
    return 1 if errors else 0


def _cmd_sweep_analytic(args, base, values, store) -> int:
    """The ``repro sweep --analytic`` path: one spectrum pass per
    workload predicts every cell; the best cell is replay-witnessed."""
    from repro.reporting.tables import render_table
    from repro.sim.compare import analytic_stream_sweep
    from repro.sim.runner import MissTraceCache

    cache = MissTraceCache(store=store)
    configs = {n: base.with_(n_streams=n) for n in values}
    obs = _ObsSession(args, "sweep")
    started = time.perf_counter()
    rows = []
    witnesses = []
    for name in args.workloads:
        cells = analytic_stream_sweep(
            name, configs, scale=args.scale, seed=args.seed, cache=cache
        )
        rows.append([name] + [100.0 * cells[n].predicted_hit_rate for n in values])
        for n in values:
            cell = cells[n]
            if cell.witnessed:
                witnesses.append(
                    f"  {name} @{n}: predicted {100 * cell.predicted_hit_rate:.1f}% "
                    f"+/- {100 * cell.bound:.1f}, replayed "
                    f"{100 * cell.simulated_hit_rate:.1f}%"
                )
    elapsed = time.perf_counter() - started
    print(
        render_table(
            ["bench"] + [f"hit% @{n}" for n in values],
            rows,
            title=(
                f"Analytic sweep: {len(args.workloads)} workloads x "
                f"{len(values)} predicted configs (scale {args.scale:g})"
            ),
        )
    )
    print("\nwitnessed cells (real replay, within declared bound):")
    for line in witnesses:
        print(line)
    print(
        f"\n{len(args.workloads) * len(values)} cells predicted, "
        f"{len(witnesses)} replayed in {elapsed:.2f}s"
        + (f"; store: {args.trace_store}" if store else "")
    )
    obs.finish()
    return 0


def _cmd_exhibit(args: argparse.Namespace) -> int:
    driver, renderer = _EXHIBITS[args.name]
    store = TraceStore(args.trace_store) if args.trace_store else None
    cache = MissTraceCache(store=store)
    kwargs = {"cache": cache}
    if args.name in experiments.SWEEP_EXHIBITS:
        # The sweep-based exhibits fan out through the parallel engine.
        kwargs.update(jobs=args.jobs, store=store)
    obs = _ObsSession(args, "exhibit")
    obs.set_meta(exhibit=args.name)
    if args.benchmarks:
        if args.name == "table4":
            from repro.workloads import TABLE4_SCALES

            scales = {k: v for k, v in TABLE4_SCALES.items() if k in args.benchmarks}
            data = driver(scales=scales, **kwargs)
        else:
            data = driver(names=args.benchmarks, **kwargs)
    else:
        data = driver(**kwargs)
    print(renderer(data))
    obs.finish()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload, scale=args.scale, seed=args.seed)
    profile = profile_trace(workload.trace())
    print(f"workload          : {workload.name} (scale {workload.scale:g})")
    print(f"trace length      : {profile.length}")
    print(f"data accesses     : {profile.data_accesses} ({profile.writes} writes)")
    print(f"footprint         : {profile.footprint_bytes / (1 << 20):.2f} MB touched")
    print(f"allocated         : {workload.data_set_bytes / (1 << 20):.2f} MB")
    print(f"unit-stride pairs : {100 * profile.unit_stride_fraction:.1f}%")
    print(f"mean block run    : {profile.mean_block_run:.1f} blocks")
    if args.locality:
        _print_locality(workload)
    if args.streams:
        _print_spectrum(workload)
    return 0


def _print_locality(workload) -> int:
    """The ``repro profile --locality`` section: stack-distance summary."""
    from repro.analytic import fa_hit_rate, profile_miss_trace
    from repro.caches.secondary import PAPER_L2_SIZES
    from repro.sim.compare import format_size
    from repro.sim.runner import MissTraceCache

    miss_trace, _ = MissTraceCache().get(workload)
    profiles = profile_miss_trace(miss_trace)
    print("locality (single-pass stack-distance profile of the L1 miss stream):")
    for block_size, prof in sorted(profiles.items()):
        demand = prof.demand_accesses
        cold = prof.cold_reads + prof.cold_writes
        cold_pct = 100.0 * cold / demand if demand else 0.0
        print(
            f"  {block_size}B blocks      : {demand} demand events, "
            f"{prof.unique_blocks} unique blocks, {cold_pct:.1f}% cold, "
            f"{prof.writebacks} writebacks"
        )
        curve = "  ".join(
            f"{format_size(size)}:{100 * fa_hit_rate(prof, size):.1f}%"
            for size in PAPER_L2_SIZES
        )
        print(f"    FA LRU hit rate : {curve}")
    return 0


def _print_spectrum(workload) -> int:
    """The ``repro profile --streams`` section: miss-spectrum summary
    plus closed-form model predictions for the paper's configurations."""
    from repro.analytic import predict_streams, stream_envelope_config
    from repro.sim.runner import MissTraceCache
    from repro.trace.spectrum import extract_spectrum

    miss_trace, _ = MissTraceCache().get(workload)
    spectrum = extract_spectrum(miss_trace)
    demand = spectrum.demand_misses
    covered = spectrum.run_misses
    pct = 100.0 * covered / demand if demand else 0.0
    print("stream spectrum (one-pass run-length/stride decomposition):")
    print(
        f"  demand misses   : {demand} ({spectrum.ifetch_misses} ifetch, "
        f"{spectrum.writebacks} writebacks alongside)"
    )
    print(
        f"  runs            : {spectrum.n_runs} covering {covered} misses "
        f"({pct:.1f}%); {spectrum.lone_misses} lone"
    )
    top = sorted(
        spectrum.stride_histogram().items(), key=lambda kv: -kv[1]
    )[:6]
    print(
        "  top strides     : "
        + "  ".join(f"{stride:+d}blk:{misses}" for stride, misses in top)
    )
    print("  closed-form predictions (hit% +/- declared bound):")
    named = (
        ("no filter", StreamConfig.jouppi()),
        ("unit filter", StreamConfig.filtered()),
        ("filter + czone", StreamConfig.non_unit(czone_bits=19)),
    )
    for label, config in named:
        prediction = predict_streams(spectrum, stream_envelope_config(config))
        print(
            f"    {label:<15}: {100 * prediction.hit_rate:5.1f}% "
            f"+/- {100 * prediction.bound:.1f}  "
            f"(EB~{prediction.eb_estimate:.0f}%)"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.analytic:
        return _cmd_compare_analytic(args)
    if args.mechanism:
        return _cmd_compare_mechanism(args)
    from repro.baselines import (
        OneBlockLookahead,
        PrefetchingCache,
        ReferencePredictionTable,
    )
    from repro.core.prefetcher import StreamPrefetcher
    from repro.reporting.tables import render_table
    from repro.sim.runner import MissTraceCache

    obs = _ObsSession(args, "compare")
    obs.set_meta(workload=args.workload, scale=args.scale)
    cache = MissTraceCache(keep_pcs=True)
    miss_trace, _ = cache.get(args.workload, scale=args.scale, seed=args.seed)
    rows = []
    contenders = [
        ("streams (no filter)", StreamPrefetcher(StreamConfig.jouppi())),
        ("streams + filter + czone", StreamPrefetcher(StreamConfig.non_unit(czone_bits=19))),
        ("OBL tagged (16)", OneBlockLookahead(entries=16)),
        ("prefetching cache (1KB)", PrefetchingCache(blocks=16)),
        ("RPT, oracle PCs", ReferencePredictionTable()),
    ]
    for label, engine in contenders:
        stats = engine.run(miss_trace)
        rows.append(
            [label, stats.hit_rate_percent, stats.bandwidth.eb_measured]
        )
    print(
        render_table(
            ["prefetcher", "hit %", "EB %"],
            rows,
            title=f"Related-work comparison on {args.workload} (scale {args.scale:g})",
        )
    )
    obs.finish()
    return 0


def _cmd_compare_mechanism(args: argparse.Namespace) -> int:
    """The ``repro compare --mechanism`` path: brute-force minimum
    matching L2 search for one secondary mechanism."""
    from repro.mechanisms import parse_mechanism_spec
    from repro.reporting.tables import render_table
    from repro.sim.compare import format_size, min_matching_l2_size

    try:
        mechanism = parse_mechanism_spec(args.mechanism)
    except ValueError as exc:
        print(f"bad --mechanism: {exc}", file=sys.stderr)
        return 2
    store = TraceStore(args.trace_store) if args.trace_store else None
    cache = MissTraceCache(store=store)
    obs = _ObsSession(args, "compare")
    match = min_matching_l2_size(
        args.workload,
        scale=args.scale,
        seed=args.seed,
        cache=cache,
        mechanism=mechanism,
    )
    obs.set_meta(
        workload=match.workload,
        scale=match.scale,
        mechanism=match.mechanism,
        matched_size=match.matched_size,
        configs_simulated=match.configs_simulated,
    )
    rows = [
        [
            format_size(point.size),
            100.0 * point.hit_rate,
            f"{point.assoc}-way/{point.block_size}B",
        ]
        for point in match.l2_hit_rates
    ]
    print(
        render_table(
            ["L2 size", "hit %", "best config"],
            rows,
            title=(
                f"Min matching L2 for {match.mechanism} on {match.workload} "
                f"(scale {match.scale:g})"
            ),
        )
    )
    print(f"\n{match.mechanism} hit rate : {match.stream_hit_rate_percent:.1f}%")
    print(f"min matching L2 : {format_size(match.matched_size)}")
    print(f"simulated       : {match.configs_simulated} candidate configs")
    obs.finish()
    return 0


def _cmd_compare_analytic(args: argparse.Namespace) -> int:
    """The ``repro compare --analytic`` path: screened Table-4 search."""
    from repro.analytic import min_matching_l2_size_analytic
    from repro.caches.secondary import PAPER_L2_ASSOCS, PAPER_L2_BLOCKS
    from repro.reporting.tables import render_table
    from repro.sim.compare import format_size

    mechanism = None
    if args.mechanism:
        from repro.mechanisms import parse_mechanism_spec

        try:
            mechanism = parse_mechanism_spec(args.mechanism)
        except ValueError as exc:
            print(f"bad --mechanism: {exc}", file=sys.stderr)
            return 2
    store = TraceStore(args.trace_store) if args.trace_store else None
    cache = MissTraceCache(store=store)
    obs = _ObsSession(args, "compare")
    match = min_matching_l2_size_analytic(
        args.workload,
        scale=args.scale,
        seed=args.seed,
        cache=cache,
        mechanism=mechanism,
    )
    obs.set_meta(
        workload=match.workload,
        scale=match.scale,
        mechanism=match.mechanism,
        matched_size=match.matched_size,
        configs_simulated=match.configs_simulated,
        sizes_pruned=match.sizes_pruned,
    )
    probed = {point.size: point for point in match.l2_hit_rates}
    rows = []
    for size, estimate in match.analytic_estimates:
        point = probed.get(size)
        rows.append(
            [
                format_size(size),
                100.0 * estimate,
                100.0 * point.hit_rate if point else None,
                f"{point.assoc}-way/{point.block_size}B" if point else "screened out",
            ]
        )
    print(
        render_table(
            ["L2 size", "analytic est %", "simulated %", "best config"],
            rows,
            title=(
                f"Analytic Table-4 screen on {match.workload} "
                f"(scale {match.scale:g})"
            ),
        )
    )
    grid = len(match.analytic_estimates) * len(PAPER_L2_ASSOCS) * len(PAPER_L2_BLOCKS)
    print(f"\nmechanism       : {match.mechanism}")
    print(f"target hit rate : {match.stream_hit_rate_percent:.1f}%")
    print(f"min matching L2 : {format_size(match.matched_size)}")
    print(f"simulated       : {match.configs_simulated}/{grid} candidate configs")
    print(
        f"screened out    : {match.sizes_pruned} ladder sizes "
        f"({match.probe_seconds:.2f}s probing)"
    )
    obs.finish()
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.caches.cache import CacheConfig
    from repro.caches.secondary import simulate_secondary
    from repro.core.prefetcher import StreamPrefetcher
    from repro.sim.runner import MissTraceCache
    from repro.timing import TimingModel, l2_system_timing, stream_system_timing

    cache = MissTraceCache()
    miss_trace, summary = cache.get(args.workload, scale=args.scale)
    streams = StreamPrefetcher(StreamConfig.non_unit(czone_bits=19)).run(miss_trace)
    l2 = simulate_secondary(
        miss_trace,
        CacheConfig(capacity=args.l2_kb * 1024, assoc=4, block_size=64, policy="lru"),
    )
    model = TimingModel()
    l2_report = l2_system_timing(summary, l2, model)
    stream_report = stream_system_timing(
        summary, streams, model.with_bandwidth_factor(args.bandwidth)
    )
    print(f"workload           : {args.workload} (scale {args.scale:g})")
    print(f"stream hit rate    : {streams.hit_rate_percent:.1f}%")
    print(f"{args.l2_kb}KB L2 hit rate  : {100 * l2.local_hit_rate:.1f}%")
    print(f"L2 design AMAT     : {l2_report.amat:.2f} cycles")
    print(
        f"stream design AMAT : {stream_report.amat:.2f} cycles "
        f"(at {args.bandwidth:g}x bandwidth)"
    )
    speedup = l2_report.amat / stream_report.amat
    verdict = "stream design wins" if speedup > 1 else "L2 design wins"
    print(f"speedup            : {speedup:.2f}x  ({verdict})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import ServiceConfig, run_server

    if args.trace:
        from repro.obs import set_tracing

        set_tracing(True)
    workers = tuple(
        url.strip() for url in (args.workers or "").split(",") if url.strip()
    )
    config = ServiceConfig(
        jobs=args.jobs,
        store_root=args.trace_store,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0,
        default_timeout_s=args.timeout,
        worker=args.worker,
        workers=workers,
        register_url=args.register,
        advertise_url=args.advertise,
        fetch_policy=args.fetch_policy,
        fleet_max_inflight=args.fleet_inflight,
        fleet_chunk_timeout_s=args.fleet_timeout,
        fleet_max_attempts=args.fleet_attempts,
        fleet_heartbeat_s=args.fleet_heartbeat,
    )
    try:
        asyncio.run(run_server(config, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("repro-service shut down", flush=True)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import differ

    if args.replay:
        stage, _, seed_text = args.replay.partition(":")
        try:
            seed = int(seed_text)
        except ValueError:
            print(f"bad --replay {args.replay!r}; expected STAGE:SEED", file=sys.stderr)
            return 2
        diff_fn = differ.STAGE_FUNCTIONS.get(stage)
        if diff_fn is None:
            print(
                f"unknown replay stage {stage!r}; use one of "
                + ", ".join(sorted(differ.STAGE_FUNCTIONS)),
                file=sys.stderr,
            )
            return 2
        divergence = diff_fn(seed, n_events=args.events)
        if divergence is None:
            print(f"{stage}:{seed}: no divergence")
            return 0
        print(divergence)
        return 1

    stages = differ.DEFAULT_STAGES
    if args.stages:
        stages = tuple(name.strip() for name in args.stages.split(",") if name.strip())
        unknown = [name for name in stages if name not in differ.STAGE_FUNCTIONS]
        if unknown:
            print(
                f"unknown stages {unknown}; use a comma-separated subset of "
                + ", ".join(sorted(differ.STAGE_FUNCTIONS)),
                file=sys.stderr,
            )
            return 2
    started = time.perf_counter()
    report = differ.run_corpus(
        seeds=args.seeds,
        seed_start=args.seed_start,
        n_events=args.events,
        registry=not args.no_registry,
        registry_scale=args.registry_scale,
        stages=stages,
        progress=print,
    )
    elapsed = time.perf_counter() - started
    print(
        f"{report.seeds_checked} seeds, {report.stages_run} stages in {elapsed:.1f}s: "
        + ("all consistent" if report.ok else f"{len(report.divergences)} DIVERGENCES")
    )
    for divergence in report.divergences:
        print(f"\n{divergence}")
    return 0 if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import load_manifest, summarize, summarize_json

    if args.obs_command == "summarize":
        try:
            manifest = load_manifest(args.manifest)
        except (OSError, ValueError) as exc:
            print(f"cannot read manifest {args.manifest!r}: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(json.dumps(summarize_json(manifest, top=args.top), indent=2))
        else:
            print(summarize(manifest, top=args.top))
        return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _render_top(snap: dict, url: str) -> str:
    """One ``repro top`` frame from a ``/v1/debug`` snapshot."""
    fleet = snap.get("fleet") or {}
    queue = snap.get("queue") or {}
    coalescer = snap.get("coalescer") or {}
    counters = snap.get("counters") or {}
    lines = [
        f"repro top — {url}  pid {snap.get('pid', '?')}  "
        f"role {fleet.get('role', '?')}  up {snap.get('uptime_s', 0.0):.0f}s",
        f"queue   : {queue.get('depth', 0)}/{queue.get('limit', 0)} admitted, "
        f"{queue.get('batcher_pending', 0)} cells awaiting batch flush",
        f"requests: {counters.get('requests', 0)} total, "
        f"{counters.get('rejected', 0)} rejected, "
        f"{counters.get('timeouts', 0)} timeouts, "
        f"{counters.get('failures', 0)} failures",
        f"cells   : {counters.get('cells_requested', 0)} requested, "
        f"{counters.get('cells_executed', 0)} executed, "
        f"{counters.get('cell_errors', 0)} errors, "
        f"{counters.get('result_cache_hits', 0)} cache hits, "
        f"{counters.get('store_fastpath_hits', 0)} store fastpath",
        f"coalesce: {coalescer.get('inflight', 0)} in flight, "
        f"{coalescer.get('hits', 0)} joins "
        f"({100 * coalescer.get('hit_rate', 0.0):.1f}% of requested cells)",
        "percentiles (ms)         p50       p95       p99     count",
    ]
    named = [
        ("request latency", snap.get("latency_ms") or {}),
        ("batch queue wait", snap.get("queue_wait_ms") or {}),
        ("admission wait", snap.get("admission_wait_ms") or {}),
    ]
    named += [
        (f"endpoint {kind}", entry)
        for kind, entry in sorted((snap.get("endpoints") or {}).items())
    ]
    for label, entry in named:
        lines.append(
            f"  {label:<20s}{entry.get('p50', 0.0):8.2f}{entry.get('p95', 0.0):10.2f}"
            f"{entry.get('p99', 0.0):10.2f}{entry.get('count', 0):10d}"
        )
    workers = fleet.get("workers") or []
    if workers:
        chunk = fleet.get("chunk_ms") or {}
        lines.append(
            f"fleet   : {fleet.get('alive', 0)}/{len(workers)} workers alive, "
            f"chunk p95 {chunk.get('p95', 0.0):.1f} ms (n={chunk.get('count', 0)})"
        )
        for worker in workers:
            age = worker.get("heartbeat_age_s")
            heartbeat = f"{age:.1f}s ago" if isinstance(age, (int, float)) else "never"
            lines.append(
                f"  {worker.get('url', '?'):<28s} "
                f"{'up' if worker.get('alive') else 'DOWN':<4s} "
                f"inflight {worker.get('inflight', 0)}  "
                f"chunks {worker.get('dispatched_chunks', 0)}  "
                f"cells {worker.get('dispatched_cells', 0)}  "
                f"retries {worker.get('retries', 0)}  "
                f"hb {heartbeat}"
            )
    log = snap.get("log") or []
    if log:
        lines.append("recent log:")
        for record in log[-8:]:
            extras = " ".join(
                f"{key}={value}"
                for key, value in record.items()
                if key not in ("ts", "level", "logger", "event")
            )
            lines.append(
                f"  {record.get('level', '?'):<7s} "
                f"{record.get('logger', '?')}/{record.get('event', '?')} "
                f"{extras}".rstrip()
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    from urllib.parse import urlsplit

    from repro.service.client import RequestFailed, ServiceClient

    url = args.url if "//" in args.url else f"http://{args.url}"
    parts = urlsplit(url)
    if not parts.hostname:
        print(f"bad --url {args.url!r}", file=sys.stderr)
        return 2
    client = ServiceClient(
        parts.hostname, parts.port or 80, timeout=5.0, retries=0
    )
    try:
        while True:
            try:
                snap = client.debug()
            except (RequestFailed, RuntimeError, OSError) as exc:
                print(f"cannot reach {url}: {exc}", file=sys.stderr)
                return 1
            if not args.once:
                print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
            print(_render_top(snap, url), flush=True)
            if args.once:
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None):
        # Through the environment rather than plumbed arguments so that
        # spawn-based worker processes make the same engine choice.
        os.environ[ENGINE_ENV_VAR] = args.engine
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "exhibit":
        return _cmd_exhibit(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "timing":
        return _cmd_timing(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "top":
        return _cmd_top(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
