"""The ``make obs-smoke`` gate: one traced sweep, artifacts validated.

Mirrors ``repro.service.smoke``: drive the real CLI end to end —
``repro sweep --jobs 2 --trace-store ... --trace-out ... --manifest
...`` — then hold the artifacts to the contracts docs/observability.md
promises:

* the trace file is schema-valid Chrome trace-event JSON
  (:func:`repro.obs.spans.validate_chrome_events`) and contains exactly
  one ``cell`` span per executed grid cell, from more than one process;
* the manifest's outcome counts (store hits + store misses +
  analytically pruned + skipped) sum to the grid size, and every cell
  record carries a wall time and worker id;
* ``repro obs summarize`` renders it without error.

Exits 0 on success, 1 with a diagnostic on the first violated contract.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.obs.manifest import load_manifest
from repro.obs.spans import validate_chrome_events

WORKLOADS = ("sweep", "stride")
N_STREAMS = (1, 2, 4)
SCALE = 0.25
JOBS = 2


def fail(message: str) -> int:
    """Print one diagnostic and return the failure exit code."""
    print(f"obs-smoke FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    """Run the traced sweep and validate its artifacts; exit code."""
    cells = len(WORKLOADS) * len(N_STREAMS)
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        tmp_path = Path(tmp)
        trace_path = tmp_path / "trace.json"
        manifest_dir = tmp_path / "runs"
        argv = [
            "sweep",
            "--workloads", *WORKLOADS,
            "--n-streams", *(str(n) for n in N_STREAMS),
            "--scale", str(SCALE),
            "--jobs", str(JOBS),
            "--trace-store", str(tmp_path / "store"),
            "--trace-out", str(trace_path),
            "--manifest", str(manifest_dir),
        ]
        print(f"obs-smoke: repro {' '.join(argv)}")
        if cli_main(argv) != 0:
            return fail("traced sweep exited nonzero")

        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        try:
            validate_chrome_events(events)
        except ValueError as exc:
            return fail(f"trace schema: {exc}")
        cell_spans = [e for e in events if e.get("name") == "cell"]
        if len(cell_spans) != cells:
            return fail(f"{len(cell_spans)} cell spans for {cells} executed cells")
        pids = {e["pid"] for e in cell_spans}
        if JOBS > 1 and len(pids) < 2:
            return fail(f"cell spans came from one process ({pids}) despite jobs={JOBS}")

        manifests = sorted(manifest_dir.glob("run-*.json"))
        if len(manifests) != 1:
            return fail(f"expected one manifest, found {manifests}")
        manifest = load_manifest(manifests[0])
        outcomes = manifest["outcomes"]
        total = (
            outcomes["store_hits"]
            + outcomes["store_misses"]
            + outcomes["analytic_pruned"]
            + outcomes["skipped"]
        )
        if total != manifest["grid"]["cells"] or total != cells:
            return fail(f"outcomes {outcomes} do not sum to grid size {cells}")
        for cell in manifest["cells"]:
            if cell["wall_time_s"] <= 0 or cell["worker"] <= 0:
                return fail(f"cell without wall time / worker id: {cell}")

        if cli_main(["obs", "summarize", str(manifests[0]), "--top", "3"]) != 0:
            return fail("obs summarize exited nonzero")

    print(
        f"obs-smoke PASS: {cells} cells, {len(cell_spans)} cell spans "
        f"across {len(pids)} processes, manifest outcomes consistent"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
