"""The ``make obs-smoke`` gate: traced sweeps validated end to end.

Two phases, both driving real entry points:

**Phase 1 — CLI sweep.** ``repro sweep --jobs 2 --trace-store ...
--trace-out ... --manifest ...`` then hold the artifacts to the
contracts docs/observability.md promises:

* the trace file is schema-valid Chrome trace-event JSON
  (:func:`repro.obs.spans.validate_chrome_events`) and contains exactly
  one ``cell`` span per executed grid cell, from more than one process;
* every cell span carries the invocation's single run-level
  ``trace_id`` and the trace includes matching Perfetto flow events;
* the manifest's outcome counts (store hits + store misses +
  analytically pruned + skipped) sum to the grid size, and every cell
  record carries a wall time and worker id;
* ``repro obs summarize`` renders it (text and ``--format json``).

**Phase 2 — fleet propagation.** Boot 1 frontend + 2 worker
subprocesses, all with ``--trace``; run one sweep; then assert from the
outside that the request's ``trace_id`` (returned in the response meta)
appears on ``cell`` spans from at least two distinct pids in the
frontend's merged ``GET /v1/trace`` timeline, connected by schema-valid
flow events; that ``GET /v1/debug`` answers with queue depth,
percentiles and per-worker state; and that ``repro top --once`` renders
a snapshot against the live fleet.

Exits 0 on success, 1 with a diagnostic on the first violated contract.
"""

from __future__ import annotations

import json
import signal
import sys
import tempfile
from pathlib import Path

import asyncio

from repro.cli import main as cli_main
from repro.fleet.smoke import _read_address, _spawn, _wait_for_workers
from repro.obs.manifest import load_manifest
from repro.obs.spans import validate_chrome_events
from repro.service.client import ServiceClient, arequest

WORKLOADS = ("sweep", "stride")
N_STREAMS = (1, 2, 4)
SCALE = 0.25
JOBS = 2

FLEET_WORKLOADS = ("sweep", "stride", "interleaved", "random")
FLEET_SEED_ROUNDS = 7


def fail(message: str) -> int:
    """Print one diagnostic and return the failure exit code."""
    print(f"obs-smoke FAIL: {message}", file=sys.stderr)
    return 1


def check_cli_sweep() -> int:
    """Phase 1: the traced CLI sweep and its artifacts; 0 on success."""
    cells = len(WORKLOADS) * len(N_STREAMS)
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        tmp_path = Path(tmp)
        trace_path = tmp_path / "trace.json"
        manifest_dir = tmp_path / "runs"
        argv = [
            "sweep",
            "--workloads", *WORKLOADS,
            "--n-streams", *(str(n) for n in N_STREAMS),
            "--scale", str(SCALE),
            "--jobs", str(JOBS),
            "--trace-store", str(tmp_path / "store"),
            "--trace-out", str(trace_path),
            "--manifest", str(manifest_dir),
        ]
        print(f"obs-smoke: repro {' '.join(argv)}")
        if cli_main(argv) != 0:
            return fail("traced sweep exited nonzero")

        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        try:
            validate_chrome_events(events)
        except ValueError as exc:
            return fail(f"trace schema: {exc}")
        cell_spans = [e for e in events if e.get("name") == "cell"]
        if len(cell_spans) != cells:
            return fail(f"{len(cell_spans)} cell spans for {cells} executed cells")
        pids = {e["pid"] for e in cell_spans}
        if JOBS > 1 and len(pids) < 2:
            return fail(f"cell spans came from one process ({pids}) despite jobs={JOBS}")
        trace_ids = {e.get("args", {}).get("trace_id") for e in cell_spans}
        if len(trace_ids) != 1 or None in trace_ids:
            return fail(
                f"cell spans should share one run-level trace_id, got {trace_ids}"
            )
        flows = [e for e in events if e.get("ph") in ("s", "f")]
        if JOBS > 1 and not flows:
            return fail("multi-process trace carries no flow events")

        manifests = sorted(manifest_dir.glob("run-*.json"))
        if len(manifests) != 1:
            return fail(f"expected one manifest, found {manifests}")
        manifest = load_manifest(manifests[0])
        outcomes = manifest["outcomes"]
        total = (
            outcomes["store_hits"]
            + outcomes["store_misses"]
            + outcomes["analytic_pruned"]
            + outcomes["skipped"]
        )
        if total != manifest["grid"]["cells"] or total != cells:
            return fail(f"outcomes {outcomes} do not sum to grid size {cells}")
        for cell in manifest["cells"]:
            if cell["wall_time_s"] <= 0 or cell["worker"] <= 0:
                return fail(f"cell without wall time / worker id: {cell}")
        phases = manifest["phase_times"]
        if "cell" not in phases or "p95_ms" not in phases["cell"]:
            return fail(f"phase_times lack percentiles: {phases.get('cell')}")

        if cli_main(["obs", "summarize", str(manifests[0]), "--top", "3"]) != 0:
            return fail("obs summarize exited nonzero")
        if cli_main(
            ["obs", "summarize", str(manifests[0]), "--format", "json"]
        ) != 0:
            return fail("obs summarize --format json exited nonzero")

    print(
        f"obs-smoke phase 1 OK: {cells} cells, {len(cell_spans)} cell spans "
        f"across {len(pids)} processes sharing trace {trace_ids.pop()}, "
        "manifest outcomes consistent"
    )
    return 0


def _fleet_sweep(host: str, port: int, seed: int):
    payload = {
        "workloads": list(FLEET_WORKLOADS),
        "n_streams": [1],
        "scale": SCALE,
        "seed": seed,
        "timeout_s": 300,
    }
    return asyncio.run(arequest(host, port, "POST", "/v1/sweep", payload, timeout=360))


def check_fleet_propagation() -> int:
    """Phase 2: traced subprocess fleet + debug surface; 0 on success."""
    procs = []
    with tempfile.TemporaryDirectory(prefix="repro-obs-fleet-") as root:
        try:
            frontend = _spawn(["--trace", "--trace-store", f"{root}/front"])
            procs.append(frontend)
            host, port = _read_address(frontend)
            frontend_url = f"http://{host}:{port}"
            for i in range(2):
                worker = _spawn(
                    [
                        "--worker",
                        "--trace",
                        "--trace-store",
                        f"{root}/w{i}",
                        "--register",
                        frontend_url,
                    ]
                )
                procs.append(worker)
                _read_address(worker)
            client = ServiceClient(host, port, timeout=120.0)
            _wait_for_workers(client, want=2)

            # Rendezvous sharding may land one seed's traces on a single
            # worker; shift seeds until one request's cells span >= 2 pids.
            propagated = None
            for seed in range(FLEET_SEED_ROUNDS):
                status, body = _fleet_sweep(host, port, seed)
                if status != 200 or not body.get("ok") or body.get("errors"):
                    return fail(f"fleet sweep failed: {status} {body}")
                trace_id = body.get("meta", {}).get("trace_id")
                if not trace_id:
                    return fail(f"sweep response meta lacks trace_id: {body.get('meta')}")
                status, document = client.request("GET", "/v1/trace")
                if status != 200:
                    return fail(f"GET /v1/trace returned {status}")
                events = document["traceEvents"]
                try:
                    validate_chrome_events(events)
                except ValueError as exc:
                    return fail(f"/v1/trace schema: {exc}")
                spans = [
                    e
                    for e in events
                    if e.get("ph") == "X"
                    and e.get("args", {}).get("trace_id") == trace_id
                ]
                cell_pids = {e["pid"] for e in spans if e.get("name") == "cell"}
                names = {e.get("name") for e in spans}
                flows = [
                    e
                    for e in events
                    if e.get("ph") in ("s", "f")
                    and str(e.get("id", "")).startswith(trace_id)
                ]
                if len(cell_pids) >= 2:
                    propagated = (trace_id, spans, cell_pids, names, flows)
                    break
            if propagated is None:
                return fail(
                    f"no request spanned >= 2 worker pids in "
                    f"{FLEET_SEED_ROUNDS} seed rounds"
                )
            trace_id, spans, cell_pids, names, flows = propagated
            if "request.admit" not in names:
                return fail(f"trace {trace_id} lacks the frontend admission span: {names}")
            if not flows:
                return fail(f"trace {trace_id} spans {len(cell_pids)} pids but has no flow events")

            snap = client.debug()
            queue = snap.get("queue", {})
            if "depth" not in queue or "limit" not in queue:
                return fail(f"/v1/debug queue malformed: {queue}")
            if snap.get("latency_ms", {}).get("count", 0) < 1:
                return fail(f"/v1/debug latency empty: {snap.get('latency_ms')}")
            if snap.get("counters", {}).get("requests", 0) < 1:
                return fail(f"/v1/debug counters empty: {snap.get('counters')}")
            workers = snap.get("fleet", {}).get("workers", [])
            if len(workers) != 2:
                return fail(f"/v1/debug fleet lists {len(workers)} workers, want 2")
            if not isinstance(snap.get("log"), list):
                return fail(f"/v1/debug log is not a list: {type(snap.get('log'))}")

            if cli_main(["top", "--once", "--url", frontend_url]) != 0:
                return fail("repro top --once exited nonzero")

            for proc in procs:
                proc.send_signal(signal.SIGINT)
            for proc in procs:
                rc = proc.wait(timeout=30)
                if rc != 0:
                    return fail(f"process exited {rc} on SIGINT (want 0)")
            print(
                f"obs-smoke phase 2 OK: trace {trace_id} spans pids "
                f"{sorted(cell_pids)} with {len(flows)} flow events; "
                "/v1/debug and repro top healthy; clean shutdown"
            )
            return 0
        except Exception as exc:
            print(f"obs-smoke FAIL: {exc}", file=sys.stderr)
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                assert proc.stdout is not None
                tail = proc.stdout.read() or ""
                if tail:
                    print(
                        f"--- output of pid {proc.pid} ---\n" + tail[-3000:],
                        file=sys.stderr,
                    )
            return 1
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)


def main() -> int:
    """Run both phases; exit code 0 only when both hold."""
    rc = check_cli_sweep()
    if rc != 0:
        return rc
    rc = check_fleet_propagation()
    if rc != 0:
        return rc
    print("obs-smoke PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
