"""Low-overhead span tracing with Chrome trace-event / Perfetto export.

A *span* is one timed operation — an L1 simulation, a store lookup, a
stream replay, one whole grid cell.  Spans are recorded as completed
Chrome trace-event ``"X"`` (complete) events: monotonic microsecond
start, duration, process id, thread id, name, optional args.  A trace
file written by :func:`write_chrome_trace` loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, giving a sweep a
single zoomable timeline across the parent and every worker process.

Design constraints, in order:

1. **Near-zero cost when disabled.**  ``tracer.span(...)`` on a
   disabled tracer returns a shared no-op context manager — one
   attribute read, no allocation — and the :func:`traced` decorator
   calls straight through.  Telemetry must be free enough to leave
   compiled in everywhere.
2. **Mergeable across processes.**  Workers record into their own
   process-global tracer and ship drained events back with each chunk
   (:mod:`repro.sim.parallel`); ``pid`` disambiguates, and
   ``perf_counter`` is CLOCK_MONOTONIC-based on Linux so timestamps
   from processes on one machine share a timebase.
3. **Dependency-free.**  Plain dicts and ``json``; nothing here
   imports the rest of ``repro``.

Span naming convention (see docs/observability.md): dotted
``layer.operation`` — ``grid.run``, ``grid.chunk``, ``cell``,
``l1.simulate``, ``stream.replay``, ``store.load_trace``,
``analytic.profile``, ``l2.probe`` …
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracing",
    "traced",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_events",
]


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times itself and reports to its tracer on exit."""

    __slots__ = ("_tracer", "name", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        args = self.args
        if exc_type is not None:
            args = dict(args or {})
            args["error"] = exc_type.__name__
        self._tracer._record(self.name, self._start_ns, end_ns, args)
        return False


class Tracer:
    """Collects completed span events; thread safe; off by default.

    Events accumulate in memory as JSON-safe dicts until drained or
    exported.  One process-global tracer (:func:`get_tracer`) serves
    the engine; independent instances work too (tests use them).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._events: List[dict] = []
        self._lock = threading.Lock()

    def span(self, name: str, **args):
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args or None)

    def _record(
        self, name: str, start_ns: int, end_ns: int, args: Optional[dict]
    ) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": start_ns // 1000,
            "dur": max(0, (end_ns - start_ns) // 1000),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def extend(self, events: Iterable[dict]) -> None:
        """Merge foreign (e.g. worker-shipped) events into this tracer."""
        events = list(events)
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def events(self) -> List[dict]:
        """A copy of everything recorded so far."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[dict]:
        """Recorded events, handing off ownership (the buffer empties)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def clear(self) -> None:
        with self._lock:
            self._events = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer the engine records into."""
    return _TRACER


def set_tracing(enabled: bool) -> Tracer:
    """Enable/disable the global tracer; returns it for chaining."""
    _TRACER.enabled = enabled
    return _TRACER


def traced(name: str) -> Callable:
    """Decorator recording a span per call on the global tracer.

    Checks ``enabled`` at call time, so decorated functions stay
    zero-overhead until tracing is switched on.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- Chrome trace-event export ----------------------------------------------


def chrome_trace(
    events: Iterable[dict], process_labels: Optional[Dict[int, str]] = None
) -> dict:
    """Wrap span events as a Chrome trace-event JSON object.

    Adds ``process_name`` metadata records so Perfetto's track headers
    read ``parent`` / ``worker-<pid>`` instead of bare pids;
    ``process_labels`` overrides those names per pid.
    """
    events = list(events)
    labels = dict(process_labels or {})
    metadata = []
    for pid in sorted({event["pid"] for event in events if "pid" in event}):
        name = labels.get(pid) or (
            "parent" if pid == os.getpid() else f"worker-{pid}"
        )
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, os.PathLike],
    events: Iterable[dict],
    process_labels: Optional[Dict[int, str]] = None,
) -> Path:
    """Write events as a Perfetto-loadable ``.json`` trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(events, process_labels)) + "\n")
    return path


def validate_chrome_events(events: Iterable[dict]) -> None:
    """Assert the trace-event schema this module promises.

    Checks every event for the required ``ph``/``ts``/``pid``/``tid``/
    ``name`` keys and non-negative times, and that within each
    ``(pid, tid)`` the ``"X"`` events appear in completion order
    (non-decreasing ``ts + dur`` — spans are recorded as they finish).
    Raises ``ValueError`` on the first defect; tests and the obs-smoke
    gate call this on real trace files.
    """
    last_end: Dict[tuple, int] = {}
    for i, event in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}: {event}")
        if event["ts"] < 0:
            raise ValueError(f"event {i} has negative ts: {event}")
        if event["ph"] != "X":
            continue
        if event.get("dur", 0) < 0:
            raise ValueError(f"event {i} has negative dur: {event}")
        thread = (event["pid"], event["tid"])
        end = event["ts"] + event.get("dur", 0)
        if end < last_end.get(thread, 0):
            raise ValueError(
                f"event {i} out of completion order on thread {thread}: {event}"
            )
        last_end[thread] = end
