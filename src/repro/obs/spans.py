"""Low-overhead span tracing with Chrome trace-event / Perfetto export.

A *span* is one timed operation — an L1 simulation, a store lookup, a
stream replay, one whole grid cell.  Spans are recorded as completed
Chrome trace-event ``"X"`` (complete) events: monotonic microsecond
start, duration, process id, thread id, name, optional args.  A trace
file written by :func:`write_chrome_trace` loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, giving a sweep a
single zoomable timeline across the parent and every worker process.

Design constraints, in order:

1. **Near-zero cost when disabled.**  ``tracer.span(...)`` on a
   disabled tracer returns a shared no-op context manager — one
   attribute read, no allocation — and the :func:`traced` decorator
   calls straight through.  Telemetry must be free enough to leave
   compiled in everywhere.
2. **Mergeable across processes.**  Workers record into their own
   process-global tracer and ship drained events back with each chunk
   (:mod:`repro.sim.parallel`); ``pid`` disambiguates, and
   ``perf_counter`` is CLOCK_MONOTONIC-based on Linux so timestamps
   from processes on one machine share a timebase.
3. **Dependency-free.**  Plain dicts and ``json``; nothing here
   imports the rest of ``repro`` beyond the stdlib-only trace context
   (:mod:`repro.obs.context`).

Span naming convention (see docs/observability.md): dotted
``layer.operation`` — ``grid.run``, ``grid.chunk``, ``cell``,
``l1.simulate``, ``stream.replay``, ``store.load_trace``,
``analytic.profile``, ``l2.probe``, ``request.admit``,
``fleet.dispatch``, ``coalesce.join`` …

When a trace id is bound (:func:`repro.obs.context.trace_scope`),
every recorded span is tagged with ``args.trace_id``; at export time
:func:`flow_events` derives Chrome flow (``"s"``/``"f"``) arrows that
connect each trace's root span to its first span on every other
``(pid, tid)``, rendering one causally-linked timeline across the
frontend and all workers in Perfetto.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.obs.context import current_trace_id

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracing",
    "traced",
    "chrome_trace",
    "flow_events",
    "write_chrome_trace",
    "validate_chrome_events",
]


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times itself and reports to its tracer on exit."""

    __slots__ = ("_tracer", "name", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        args = self.args
        if exc_type is not None:
            args = dict(args or {})
            args["error"] = exc_type.__name__
        self._tracer._record(self.name, self._start_ns, end_ns, args)
        return False


class Tracer:
    """Collects completed span events; thread safe; off by default.

    Events accumulate in memory as JSON-safe dicts until drained or
    exported.  One process-global tracer (:func:`get_tracer`) serves
    the engine; independent instances work too (tests use them).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._events: List[dict] = []
        self._lock = threading.Lock()

    def span(self, name: str, **args):
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args or None)

    def _record(
        self, name: str, start_ns: int, end_ns: int, args: Optional[dict]
    ) -> None:
        trace_id = current_trace_id()
        if trace_id is not None and (args is None or "trace_id" not in args):
            args = dict(args or {})
            args["trace_id"] = trace_id
        event = {
            "name": name,
            "ph": "X",
            "ts": start_ns // 1000,
            "dur": max(0, (end_ns - start_ns) // 1000),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def extend(self, events: Iterable[dict]) -> None:
        """Merge foreign (e.g. worker-shipped) events into this tracer."""
        events = list(events)
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def events(self) -> List[dict]:
        """A copy of everything recorded so far."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[dict]:
        """Recorded events, handing off ownership (the buffer empties)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def clear(self) -> None:
        with self._lock:
            self._events = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer the engine records into."""
    return _TRACER


def set_tracing(enabled: bool) -> Tracer:
    """Enable/disable the global tracer; returns it for chaining."""
    _TRACER.enabled = enabled
    return _TRACER


def traced(name: str) -> Callable:
    """Decorator recording a span per call on the global tracer.

    Checks ``enabled`` at call time, so decorated functions stay
    zero-overhead until tracing is switched on.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- Chrome trace-event export ----------------------------------------------


def flow_events(events: Iterable[dict]) -> List[dict]:
    """Derive Chrome flow (``"s"``/``"f"``) arrows from trace-tagged spans.

    Spans sharing an ``args.trace_id`` form one trace.  For each trace
    spanning more than one ``(pid, tid)``, the earliest-starting span is
    taken as the root (frontend admission, in the service) and one
    ``"s"``→``"f"`` arrow pair is emitted from the root to the first
    span on every other thread, so Perfetto draws the causal fan-out
    from the request to each worker that executed part of it.
    """
    by_trace: Dict[str, List[dict]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        trace_id = (event.get("args") or {}).get("trace_id")
        if trace_id:
            by_trace.setdefault(str(trace_id), []).append(event)
    flows: List[dict] = []
    sequence = 0
    for trace_id in sorted(by_trace):
        spans = sorted(by_trace[trace_id], key=lambda e: e["ts"])
        root = spans[0]
        root_thread = (root["pid"], root["tid"])
        entries: Dict[tuple, dict] = {}
        for span in spans:
            entries.setdefault((span["pid"], span["tid"]), span)
        for thread, entry in entries.items():
            if thread == root_thread:
                continue
            sequence += 1
            flow_id = f"{trace_id}:{sequence}"
            flows.append(
                {
                    "name": "trace",
                    "cat": "trace",
                    "ph": "s",
                    "id": flow_id,
                    "ts": root["ts"],
                    "pid": root["pid"],
                    "tid": root["tid"],
                    "args": {"trace_id": trace_id},
                }
            )
            flows.append(
                {
                    "name": "trace",
                    "cat": "trace",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    # Clamp: worker clocks share a timebase on one machine,
                    # but never let an arrow point backwards in the file.
                    "ts": max(entry["ts"], root["ts"]),
                    "pid": entry["pid"],
                    "tid": entry["tid"],
                    "args": {"trace_id": trace_id},
                }
            )
    return flows


def chrome_trace(
    events: Iterable[dict],
    process_labels: Optional[Dict[int, str]] = None,
    flows: bool = True,
) -> dict:
    """Wrap span events as a Chrome trace-event JSON object.

    Adds ``process_name`` metadata records so Perfetto's track headers
    read ``parent`` / ``worker-<pid>`` instead of bare pids;
    ``process_labels`` overrides those names per pid.  Unless ``flows``
    is False, cross-thread flow arrows derived by :func:`flow_events`
    are appended for every trace-tagged span group.
    """
    events = list(events)
    labels = dict(process_labels or {})
    metadata = []
    for pid in sorted({event["pid"] for event in events if "pid" in event}):
        name = labels.get(pid) or (
            "parent" if pid == os.getpid() else f"worker-{pid}"
        )
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    arrows = flow_events(events) if flows else []
    return {"traceEvents": metadata + events + arrows, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, os.PathLike],
    events: Iterable[dict],
    process_labels: Optional[Dict[int, str]] = None,
) -> Path:
    """Write events as a Perfetto-loadable ``.json`` trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(events, process_labels)) + "\n")
    return path


def validate_chrome_events(events: Iterable[dict]) -> None:
    """Assert the trace-event schema this module promises.

    Checks every event for the required ``ph``/``ts``/``pid``/``tid``/
    ``name`` keys and non-negative times, that within each ``(pid, tid)``
    the ``"X"`` events appear in completion order (non-decreasing
    ``ts + dur`` — spans are recorded as they finish), and that flow
    events pair up: every ``"s"``/``"f"`` carries ``id`` and ``cat``,
    each flow id has exactly one start and one finish, and the finish
    does not precede the start.  Raises ``ValueError`` on the first
    defect; tests and the obs-smoke gate call this on real trace files.
    """
    last_end: Dict[tuple, int] = {}
    flow_starts: Dict[str, dict] = {}
    flow_finishes: Dict[str, dict] = {}
    for i, event in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}: {event}")
        if event["ts"] < 0:
            raise ValueError(f"event {i} has negative ts: {event}")
        if event["ph"] in ("s", "f"):
            for key in ("id", "cat"):
                if key not in event:
                    raise ValueError(
                        f"flow event {i} missing required key {key!r}: {event}"
                    )
            side = flow_starts if event["ph"] == "s" else flow_finishes
            if event["id"] in side:
                raise ValueError(
                    f"flow event {i} duplicates {event['ph']!r} for id "
                    f"{event['id']!r}: {event}"
                )
            side[event["id"]] = event
            continue
        if event["ph"] != "X":
            continue
        if event.get("dur", 0) < 0:
            raise ValueError(f"event {i} has negative dur: {event}")
        thread = (event["pid"], event["tid"])
        end = event["ts"] + event.get("dur", 0)
        if end < last_end.get(thread, 0):
            raise ValueError(
                f"event {i} out of completion order on thread {thread}: {event}"
            )
        last_end[thread] = end
    for flow_id, start in flow_starts.items():
        finish = flow_finishes.get(flow_id)
        if finish is None:
            raise ValueError(f"flow id {flow_id!r} has a start but no finish")
        if finish["ts"] < start["ts"]:
            raise ValueError(
                f"flow id {flow_id!r} finishes (ts={finish['ts']}) before it "
                f"starts (ts={start['ts']})"
            )
    for flow_id in flow_finishes:
        if flow_id not in flow_starts:
            raise ValueError(f"flow id {flow_id!r} has a finish but no start")
