"""Shared counter/gauge/histogram registry with mergeable snapshots.

This is the whole system's metrics substrate.  It began life as
``repro.service.metrics`` (which now re-exports it unchanged), but every
layer wants the same three instrument shapes — monotonic counters
(cells executed, store hits, bytes written), point-in-time gauges
(queue depth) and latency histograms with quantiles — dependency-free
and cheap enough to bump on every event.  Promoting it out of the
service adds the piece cross-process collection needs: a **mergeable
snapshot format**.

* :meth:`MetricsRegistry.snapshot` — a plain dict for ``/metrics.json``
  and for assertions in tests/benchmarks; ``include_samples=True``
  yields the *mergeable* form (histograms carry their sample windows,
  so merged quantiles are computed from real observations).
* :meth:`MetricsRegistry.drain` — snapshot-and-reset, which is how a
  sweep worker ships its counters back with each completed chunk
  without ever double-counting.
* :func:`merge_snapshots` — fold any number of snapshots into one.
  Counters and histogram count/sum add exactly (they are integers and
  float sums of the same observations), so the merge is associative and
  loss-free; gauges add (a fleet-wide gauge is the sum of its workers').
* :meth:`MetricsRegistry.merge` — absorb a snapshot into live
  instruments (the parent side of worker ship-back).
* :meth:`MetricsRegistry.render_text` / :func:`render_snapshot_text` —
  Prometheus-style text exposition, so standard scrape tooling works
  against a dev deployment unchanged.

All instruments are thread safe: the asyncio loop, the batcher's worker
threads and the store/runner hook callbacks may all bump them
concurrently.

The process-global **engine registry** (:func:`engine_registry`) is
where the simulation engine's own instruments live — cell wall times,
store hit/miss/bytes, analytic pruned-vs-probed counts.  Its
instruments are namespaced ``engine_*`` so merging it with a service
registry (``GET /metrics`` does exactly that) can never collide.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "engine_registry",
    "merge_snapshots",
    "diff_snapshots",
    "strip_samples",
    "render_snapshot_text",
]


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that goes up and down (queue depth, in-flight cells)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


def _percentile(data: List[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not data:
        return 0.0
    rank = max(0, min(len(data) - 1, round(pct / 100 * (len(data) - 1))))
    return data[rank]


class Histogram:
    """Observations with cumulative count/sum and sampled quantiles.

    Quantiles come from a bounded ring of the most recent
    ``max_samples`` observations — a deliberate trade: exact for any
    test-sized series, sliding-window-recent for a long-lived server,
    and O(1) memory either way.  ``count``/``sum`` stay exact forever,
    and they are what merging across processes preserves exactly.
    """

    def __init__(self, name: str, help: str = "", max_samples: int = 2048):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self.help = help
        self._max_samples = max_samples
        self._samples: List[float] = []
        self._next = 0
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self._push(value)

    def _push(self, value: float) -> None:
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._max_samples

    def absorb(self, count: int, total: float, samples: Iterable[float]) -> None:
        """Fold another histogram's drained state in (count/sum exact)."""
        if count < 0:
            raise ValueError(f"absorbed count must be >= 0, got {count}")
        with self._lock:
            self.count += count
            self.sum += total
            for value in samples:
                self._push(value)

    def samples(self) -> List[float]:
        """The sampled window in observation order (oldest first)."""
        with self._lock:
            if len(self._samples) < self._max_samples:
                return list(self._samples)
            return self._samples[self._next :] + self._samples[: self._next]

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile of the sampled window (0 if empty)."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        with self._lock:
            data = sorted(self._samples)
        return _percentile(data, pct)

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self._samples = []
            self._next = 0


class MetricsRegistry:
    """Named instruments, created on first use and rendered on demand.

    ``counter``/``gauge``/``histogram`` are get-or-create and idempotent,
    so independent components (queue, coalescer, batcher, store hooks)
    can each grab the instruments they bump without wiring order
    mattering.  Re-registering a name as a different instrument type is
    a bug and raises.
    """

    #: Quantiles rendered in the text exposition and JSON snapshot.
    QUANTILES = (50.0, 95.0, 99.0)

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", max_samples: int = 2048
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, max_samples=max_samples)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._instruments.get(name)

    # -- renderings --------------------------------------------------------

    def snapshot(self, include_samples: bool = False) -> dict:
        """All instruments as one JSON-safe dict.

        ``include_samples=True`` produces the *mergeable* form: each
        histogram carries its sampled window, so
        :func:`merge_snapshots` can recompute quantiles over the union
        of observations instead of guessing between per-process ones.
        """
        with self._lock:
            instruments = dict(self._instruments)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                entry = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    **{
                        f"p{pct:g}": instrument.percentile(pct)
                        for pct in self.QUANTILES
                    },
                }
                if include_samples:
                    entry["samples"] = instrument.samples()
                histograms[name] = entry
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def drain(self) -> dict:
        """Mergeable snapshot of everything, then reset to zero.

        This is the worker side of cross-process collection: drain after
        each completed chunk and ship the delta; repeated drains never
        double-count because every instrument restarts from zero.
        """
        with self._lock:
            instruments = dict(self._instruments)
        snapshot = self.snapshot(include_samples=True)
        for instrument in instruments.values():
            instrument.reset()
        return snapshot

    def merge(self, snapshot: dict) -> None:
        """Absorb a (mergeable) snapshot into this registry's instruments.

        Counters add, gauges add, histograms fold in count/sum exactly
        plus whatever samples the snapshot carried.  Unknown names are
        created on the fly, so a parent can merge worker snapshots
        without pre-declaring the instrument set.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).add(float(value))
        for name, entry in snapshot.get("histograms", {}).items():
            self.histogram(name).absorb(
                int(entry.get("count", 0)),
                float(entry.get("sum", 0.0)),
                entry.get("samples", ()),
            )

    def render_text(self) -> str:
        """Prometheus-style text exposition (for ``GET /metrics``)."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: List[str] = []
        for name, instrument in sorted(instruments.items()):
            full = f"{self.prefix}_{name}"
            if instrument.help:
                lines.append(f"# HELP {full} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {instrument.value:g}")
            elif isinstance(instrument, Histogram):
                lines.append(f"# TYPE {full} summary")
                for pct in self.QUANTILES:
                    lines.append(
                        f'{full}{{quantile="{pct / 100:g}"}} '
                        f"{instrument.percentile(pct):g}"
                    )
                lines.append(f"{full}_count {instrument.count}")
                lines.append(f"{full}_sum {instrument.sum:g}")
        return "\n".join(lines) + "\n"


# -- snapshot algebra -------------------------------------------------------


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold snapshots into one (associative; exact for counters/count/sum).

    Histogram quantiles in the result are recomputed from the union of
    whatever sample windows the inputs carried (the mergeable form of
    :meth:`MetricsRegistry.snapshot`); inputs without samples still
    merge their exact ``count``/``sum``.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, entry in snapshot.get("histograms", {}).items():
            merged = histograms.setdefault(
                name, {"count": 0, "sum": 0.0, "samples": []}
            )
            merged["count"] += int(entry.get("count", 0))
            merged["sum"] += float(entry.get("sum", 0.0))
            merged["samples"].extend(entry.get("samples", ()))
    for entry in histograms.values():
        data = sorted(entry["samples"])
        for pct in MetricsRegistry.QUANTILES:
            entry[f"p{pct:g}"] = _percentile(data, pct)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def diff_snapshots(after: dict, before: dict) -> dict:
    """What happened between two snapshots of the *same* registry.

    Counters and histogram count/sum subtract; gauges report their
    ``after`` value (a point-in-time reading has no meaningful delta).
    Run manifests use this to attribute store hits, bytes moved and
    cell counts to one invocation.
    """
    counters = {
        name: int(value) - int(before.get("counters", {}).get(name, 0))
        for name, value in after.get("counters", {}).items()
    }
    gauges = dict(after.get("gauges", {}))
    histograms = {}
    for name, entry in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name, {})
        histograms[name] = {
            "count": int(entry.get("count", 0)) - int(prior.get("count", 0)),
            "sum": float(entry.get("sum", 0.0)) - float(prior.get("sum", 0.0)),
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def strip_samples(snapshot: dict) -> dict:
    """Drop raw histogram sample windows (for compact JSON renderings)."""
    histograms = {
        name: {key: value for key, value in entry.items() if key != "samples"}
        for name, entry in snapshot.get("histograms", {}).items()
    }
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": histograms,
    }


def render_snapshot_text(snapshot: dict, prefix: str = "repro") -> str:
    """Prometheus-style text exposition of a snapshot dict.

    The instrument-level :meth:`MetricsRegistry.render_text` covers a
    single live registry; this renders *merged* views (service registry
    + engine registry) where only the snapshot exists.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {int(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {float(value):g}")
    for name, entry in sorted(snapshot.get("histograms", {}).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} summary")
        for pct in MetricsRegistry.QUANTILES:
            quantile = entry.get(f"p{pct:g}", 0.0)
            lines.append(f'{full}{{quantile="{pct / 100:g}"}} {quantile:g}')
        lines.append(f"{full}_count {int(entry.get('count', 0))}")
        lines.append(f"{full}_sum {float(entry.get('sum', 0.0)):g}")
    return "\n".join(lines) + "\n"


# -- the process-global engine registry -------------------------------------

_ENGINE: Optional[MetricsRegistry] = None
_ENGINE_LOCK = threading.Lock()


def engine_registry() -> MetricsRegistry:
    """The process-global registry the simulation engine records into.

    Every instrument the engine creates here is namespaced ``engine_*``
    so the service can merge this registry into its own ``/metrics``
    exposition without name collisions.  Sweep workers drain theirs
    back to the parent with each completed chunk
    (:mod:`repro.sim.parallel`), so after a parallel grid this registry
    holds the whole fleet's counts.
    """
    global _ENGINE
    if _ENGINE is None:
        with _ENGINE_LOCK:
            if _ENGINE is None:
                _ENGINE = MetricsRegistry()
    return _ENGINE
