"""``repro.obs`` — the unified telemetry subsystem.

Dependency-free observability for the whole simulation engine, one
module per concern (each importable alone):

* :mod:`repro.obs.context` — contextvars-carried trace identity
  (``trace_id``/``span_id``) propagated across async request handling,
  the fleet chunk wire and the spawn-pool boundary.
* :mod:`repro.obs.log` — leveled structured JSON logging into a bounded
  in-memory ring (surfaced by ``GET /v1/debug`` and run manifests),
  with opt-in stream emission.
* :mod:`repro.obs.metrics` — shared Counter/Gauge/Histogram registry
  with a mergeable snapshot format; the process-global
  :func:`~repro.obs.metrics.engine_registry` is where engine layers
  record, and the service merges it into ``GET /metrics``.
* :mod:`repro.obs.spans` — low-overhead span tracing (context manager +
  decorator, no-op fast path when disabled) exporting Chrome
  trace-event JSON that loads in Perfetto.
* :mod:`repro.obs.events` — typed :class:`~repro.obs.events.StoreEvent`
  hook payloads (name, digest, bytes, duration), ``str``-compatible
  with PR 2's name-only hooks.
* :mod:`repro.obs.manifest` — per-invocation run manifests (git SHA,
  cell outcomes with wall time and worker id, store I/O, phase times)
  and the ``repro obs summarize`` rendering.

Cross-process collection is wired in :mod:`repro.sim.parallel`: sweep
workers drain their local registry and tracer with every completed
chunk and the parent merges, so one ``run_grid`` yields one registry
and one timeline covering the whole fleet.  See docs/observability.md.
"""

from repro.obs.context import (
    bind_trace,
    current_span_id,
    current_trace_id,
    new_span_id,
    new_trace_id,
    trace_scope,
)
from repro.obs.events import StoreEvent, as_legacy_hook, record_event
from repro.obs.log import (
    LogRing,
    configure,
    get_level,
    get_logger,
    log_ring,
    set_level,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestBuilder,
    git_sha,
    load_manifest,
    phase_times,
    summarize,
    summarize_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    engine_registry,
    merge_snapshots,
    render_snapshot_text,
    strip_samples,
)
from repro.obs.spans import (
    Tracer,
    chrome_trace,
    flow_events,
    get_tracer,
    set_tracing,
    traced,
    validate_chrome_events,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "engine_registry",
    "merge_snapshots",
    "diff_snapshots",
    "strip_samples",
    "render_snapshot_text",
    "Tracer",
    "get_tracer",
    "set_tracing",
    "traced",
    "chrome_trace",
    "flow_events",
    "write_chrome_trace",
    "validate_chrome_events",
    "StoreEvent",
    "as_legacy_hook",
    "record_event",
    "MANIFEST_VERSION",
    "ManifestBuilder",
    "git_sha",
    "load_manifest",
    "phase_times",
    "summarize",
    "summarize_json",
    "bind_trace",
    "current_span_id",
    "current_trace_id",
    "new_span_id",
    "new_trace_id",
    "trace_scope",
    "LogRing",
    "configure",
    "get_level",
    "get_logger",
    "log_ring",
    "set_level",
]
