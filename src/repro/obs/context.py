"""Request-scoped trace context carried on contextvars.

A *trace* groups every span and log record produced on behalf of one
logical request — from frontend admission through chunk dispatch to the
worker replay that ultimately executes each cell.  The context is a pair
of identifiers:

* ``trace_id`` — minted once per request (or once per CLI run) and
  propagated everywhere: into coalesced followers, over the fleet chunk
  wire as an optional per-cell field, and into pool worker processes via
  the pickled :class:`~repro.sim.parallel.SweepTask`.
* ``span_id`` — identifies the current unit of work inside the trace;
  re-minted by :func:`trace_scope` so child scopes are distinguishable.

Everything here is stdlib-only and import-light on purpose: the tracer
(`repro.obs.spans`) and the logger (`repro.obs.log`) both read the
current trace id on their hot paths, so lookups must stay a single
``ContextVar.get``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

_TRACE_ID: ContextVar[Optional[str]] = ContextVar("repro_trace_id", default=None)
_SPAN_ID: ContextVar[Optional[str]] = ContextVar("repro_span_id", default=None)


def new_trace_id() -> str:
    """Mint a fresh 16-hex-digit trace identifier."""

    return os.urandom(8).hex()


def new_span_id() -> str:
    """Mint a fresh 8-hex-digit span identifier."""

    return os.urandom(4).hex()


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, or None outside a trace."""

    return _TRACE_ID.get()


def current_span_id() -> Optional[str]:
    """The span id bound to the current context, or None outside a trace."""

    return _SPAN_ID.get()


@contextmanager
def trace_scope(trace_id: Optional[str] = None) -> Iterator[str]:
    """Bind ``trace_id`` (minting one when None) for the dynamic extent.

    Yields the bound trace id.  A fresh ``span_id`` is minted alongside,
    so nested scopes on the same trace remain distinguishable in logs.
    """

    bound = trace_id if trace_id is not None else new_trace_id()
    trace_token = _TRACE_ID.set(bound)
    span_token = _SPAN_ID.set(new_span_id())
    try:
        yield bound
    finally:
        _SPAN_ID.reset(span_token)
        _TRACE_ID.reset(trace_token)


@contextmanager
def bind_trace(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Like :func:`trace_scope` but a no-op when ``trace_id`` is None.

    Used on execution paths (e.g. ``_run_one``) where a missing trace id
    means "untraced work" and must not mint a synthetic trace.
    """

    if trace_id is None:
        yield _TRACE_ID.get()
        return
    with trace_scope(trace_id) as bound:
        yield bound
