"""Dependency-free leveled structured logging with a bounded ring buffer.

Every record is a flat JSON-serialisable dict::

    {"ts": <unix seconds>, "level": "INFO", "logger": "service",
     "event": "request.admit", "trace_id": "0f3a...", **fields}

``trace_id`` is attached automatically from :mod:`repro.obs.context`
when a trace is bound, which is what lets ``GET /v1/debug`` and
``repro top`` correlate the recent log ring with spans.

Records always land in a process-local bounded ring (introspected live
by the service debug endpoint and folded into run manifests); emission
to a stream is opt-in (``configure(stream=...)`` or
``REPRO_LOG_STDERR=1``) so the default cost of an enabled-level call is
one dict build plus a deque append.  Disabled-level calls cost a single
integer compare — that is what keeps the traced+logged overhead gate
(benchmarks/bench_obs.py) under 5%.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.context import current_trace_id

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LEVELS: Dict[str, int] = {"DEBUG": DEBUG, "INFO": INFO, "WARNING": WARNING, "ERROR": ERROR}
_LEVEL_NAMES: Dict[int, str] = {value: name for name, value in LEVELS.items()}

DEFAULT_RING_SIZE = 2048


def parse_level(level: Any) -> int:
    """Accept a numeric level or a case-insensitive name ("info")."""

    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    if name not in LEVELS:
        raise ValueError(f"unknown log level: {level!r}")
    return LEVELS[name]


class LogRing:
    """Thread-safe bounded ring of the most recent log records."""

    def __init__(self, maxlen: int = DEFAULT_RING_SIZE) -> None:
        self._records: deque = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def tail(self, n: int = 50) -> List[Dict[str, Any]]:
        """The most recent ``n`` records, oldest first."""

        with self._lock:
            records = list(self._records)
        if n <= 0:
            return []
        return records[-n:]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class Logger:
    """A named handle onto the shared ring/level/stream state."""

    def __init__(self, name: str, state: "_LogState") -> None:
        self.name = name
        self._state = state

    def is_enabled(self, level: int) -> bool:
        return level >= self._state.level

    def log(self, level: int, event: str, **fields: Any) -> None:
        state = self._state
        if level < state.level:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": _LEVEL_NAMES.get(level, str(level)),
            "logger": self.name,
            "event": event,
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        if fields:
            record.update(fields)
        state.ring.append(record)
        stream = state.stream
        if stream is not None:
            try:
                stream.write(json.dumps(record, default=str) + "\n")
            except (OSError, ValueError):
                pass

    def debug(self, event: str, **fields: Any) -> None:
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(ERROR, event, **fields)


class _LogState:
    def __init__(self) -> None:
        self.level = self._initial_level()
        self.ring = LogRing()
        self.stream: Optional[TextIO] = sys.stderr if os.environ.get("REPRO_LOG_STDERR") else None
        self.loggers: Dict[str, Logger] = {}
        self.lock = threading.Lock()

    @staticmethod
    def _initial_level() -> int:
        raw = os.environ.get("REPRO_LOG_LEVEL")
        if not raw:
            return INFO
        try:
            return parse_level(raw)
        except ValueError:
            return INFO


_STATE = _LogState()


def get_logger(name: str = "repro") -> Logger:
    """Fetch (or create) the named logger backed by the shared ring."""

    with _STATE.lock:
        logger = _STATE.loggers.get(name)
        if logger is None:
            logger = Logger(name, _STATE)
            _STATE.loggers[name] = logger
        return logger


def set_level(level: Any) -> None:
    """Set the global threshold; records below it are dropped outright."""

    _STATE.level = parse_level(level)


def get_level() -> int:
    """The current global threshold level."""

    return _STATE.level


def log_ring() -> LogRing:
    """The process-wide ring of recent records."""

    return _STATE.ring


def configure(
    level: Any = None,
    stream: Optional[TextIO] = None,
    ring_size: Optional[int] = None,
) -> None:
    """Adjust logging state in one call (level, emit stream, ring size)."""

    if level is not None:
        set_level(level)
    if stream is not None:
        _STATE.stream = stream
    if ring_size is not None:
        _STATE.ring = LogRing(ring_size)
