"""Typed hook events for the trace store and miss-trace cache.

PR 2 wired :class:`~repro.trace.store.TraceStore` and
:class:`~repro.sim.runner.MissTraceCache` hooks as bare
``Callable[[str], None]`` callbacks fired with an event *name*
(``"trace_hit"``, ``"result_saved"`` …).  Observability wants more than
a name: which digest, how many bytes moved, how long the operation
took.  :class:`StoreEvent` carries that payload.

Compatibility is by construction rather than by adapter shims at every
call site: ``StoreEvent`` subclasses :class:`str`, equal and hashable
as its event name, so every pre-existing ``Callable[[str], None]`` hook
(the service's counter dispatch included) keeps working unmodified —
it simply receives a string that *also* has ``.digest``/``.nbytes``/
``.duration_s``.  Hooks that insist on a plain ``str`` can be wrapped
with :func:`as_legacy_hook`.

:func:`record_event` is the standard sink: it folds an event into the
process-global engine registry (``engine_<group>_<name>_total``
counters, byte counters split by read/write direction, and an
``engine_<group>_op_ms`` latency histogram), so store and runner
traffic is measured even when no explicit hooks are installed.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import engine_registry

__all__ = ["StoreEvent", "as_legacy_hook", "record_event"]


class StoreEvent(str):
    """An event name plus its payload; ``str``-compatible by design.

    Attributes:
        digest: content digest of the entry touched (None for events
            that have no single entry).
        nbytes: bytes read or written by the operation (0 if nothing
            moved — e.g. a miss).
        duration_s: operation wall time in seconds (0.0 when the
            emitter did not time it).
    """

    __slots__ = ("digest", "nbytes", "duration_s")

    def __new__(
        cls,
        name: str,
        digest: Optional[str] = None,
        nbytes: int = 0,
        duration_s: float = 0.0,
    ) -> "StoreEvent":
        self = super().__new__(cls, name)
        self.digest = digest
        self.nbytes = nbytes
        self.duration_s = duration_s
        return self

    @property
    def event_name(self) -> str:
        """The bare event name (what legacy hooks key on)."""
        return str(self)

    def __repr__(self) -> str:
        return (
            f"StoreEvent({str(self)!r}, digest={self.digest!r}, "
            f"nbytes={self.nbytes}, duration_s={self.duration_s:g})"
        )


def as_legacy_hook(hook: Callable[[str], None]) -> Callable[[StoreEvent], None]:
    """Adapt an old name-only hook to the typed-event protocol.

    Rarely needed — :class:`StoreEvent` already *is* a ``str`` — but it
    guarantees the callee sees a plain built-in string, for hooks that
    type-check or pickle their argument.
    """

    def adapted(event: StoreEvent) -> None:
        hook(str(event))

    return adapted


def record_event(event: StoreEvent, group: str = "store") -> None:
    """Fold one typed event into the process-global engine registry."""
    registry = engine_registry()
    registry.counter(f"engine_{group}_{event}_total").inc()
    if event.nbytes:
        direction = (
            "written"
            if event.endswith("_saved") or event.endswith("_ingested")
            else "read"
        )
        registry.counter(f"engine_{group}_{direction}_bytes_total").inc(event.nbytes)
    if event.duration_s:
        registry.histogram(f"engine_{group}_op_ms").observe(1e3 * event.duration_s)
