"""Run manifests: one JSON record of what an invocation actually did.

A manifest makes a performance claim reproducible without rerunning it:
it records the code identity (git SHA), the grid that was asked for,
what each cell cost (wall time, worker id, whether the store or the
analytic screen short-circuited it), the engine counters the run moved
(store hits/misses, bytes read/written, cells pruned vs simulated) and
a phase-time breakdown aggregated from the span tracer.  ``repro sweep
--manifest DIR`` drops one per invocation into ``DIR``; ``repro obs
summarize FILE`` renders the top-k slowest cells and the phase
breakdown back out.

Schema (``manifest_version`` 1) — see docs/observability.md for the
field-by-field description:

.. code-block:: json

    {"manifest_version": 1, "command": "sweep", "argv": [...],
     "git_sha": "...", "python": "3.11.x",
     "started_at_unix": 0.0, "wall_time_s": 0.0,
     "grid": {"cells": 0},
     "outcomes": {"store_hits": 0, "store_misses": 0,
                  "analytic_pruned": 0, "errors": 0, "by_source": {}},
     "cells": [{"key": [], "workload": "", "ok": true, "error": "",
                "wall_time_s": 0.0, "worker": 0, "source": ""}],
     "store_io": {"read_bytes": 0, "written_bytes": 0},
     "phase_times": {"cell": {"count": 0, "total_ms": 0.0, "max_ms": 0.0}},
     "metrics_delta": {"counters": {}, "gauges": {}, "histograms": {}},
     "meta": {}}

Cell ``source`` vocabulary: ``"store"`` (replay result loaded from the
persistent store), ``"replayed"`` (actually simulated),
``"analytic_pruned"`` (screened out without simulation),
``"skipped"`` (never visited — e.g. a binary search converged before
probing it) and ``"error"``.  ``store_hits + store_misses +
analytic_pruned + skipped`` always equals the grid size; for a plain
sweep (every cell executes) the first three alone cover it.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.log import log_ring
from repro.obs.metrics import diff_snapshots, engine_registry
from repro.obs.spans import get_tracer

__all__ = [
    "MANIFEST_VERSION",
    "git_sha",
    "phase_times",
    "ManifestBuilder",
    "load_manifest",
    "summarize",
    "summarize_json",
]

MANIFEST_VERSION = 1

_RUN_SEQ = itertools.count()


def git_sha(cwd: Optional[Union[str, os.PathLike]] = None) -> Optional[str]:
    """The current commit SHA, or None when not in a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _nearest_rank(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    rank = max(1, -(-int(pct * len(ordered)) // 100))  # ceil without float drift
    return ordered[min(rank, len(ordered)) - 1]


def phase_times(events: Iterable[dict]) -> Dict[str, dict]:
    """Aggregate span events into per-phase timing statistics.

    Each phase entry carries ``count``, ``total_ms``, ``max_ms`` and the
    nearest-rank ``p50_ms``/``p95_ms``/``p99_ms`` over individual span
    durations — totals say where the time went, percentiles say whether
    it went there uniformly or in a long tail.
    """
    durations: Dict[str, List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        durations.setdefault(event["name"], []).append(
            event.get("dur", 0) / 1000.0
        )
    phases: Dict[str, dict] = {}
    for name, values in durations.items():
        values.sort()
        phases[name] = {
            "count": len(values),
            "total_ms": round(sum(values), 3),
            "max_ms": round(values[-1], 3),
            "p50_ms": round(_nearest_rank(values, 50.0), 3),
            "p95_ms": round(_nearest_rank(values, 95.0), 3),
            "p99_ms": round(_nearest_rank(values, 99.0), 3),
        }
    return phases


def _json_key(key):
    """Task keys rendered JSON-safe, matching the sweep engine's payloads."""
    if isinstance(key, tuple):
        return [_json_key(part) for part in key]
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    return repr(key)


class ManifestBuilder:
    """Accumulates one invocation's record; construct *before* running.

    The constructor snapshots the engine registry and wall clock, so
    everything recorded between construction and :meth:`build` is
    attributed to this run.  Cells are added from sweep results
    (:meth:`add_results`) or one at a time (:meth:`add_cell`).
    """

    def __init__(
        self,
        command: str,
        argv: Optional[Sequence[str]] = None,
        registry=None,
        tracer=None,
    ):
        self.command = command
        self.argv = list(argv) if argv is not None else None
        self._registry = registry if registry is not None else engine_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self.started_at_unix = time.time()
        self._started = time.perf_counter()
        self._before = self._registry.snapshot()
        self._log_mark = len(log_ring())
        self._cells: List[dict] = []
        self.meta: Dict[str, object] = {}

    def add_cell(
        self,
        key,
        workload: str,
        source: str,
        wall_time_s: float = 0.0,
        worker: int = 0,
        ok: bool = True,
        error: str = "",
        origin: str = "",
    ) -> None:
        cell = {
            "key": _json_key(key),
            "workload": workload,
            "ok": bool(ok),
            "error": error,
            "wall_time_s": round(float(wall_time_s), 6),
            "worker": int(worker),
            "source": source,
        }
        if origin:
            # Fleet provenance: which node executed this cell ("local"
            # or a worker base URL).  Single-host manifests omit it.
            cell["origin"] = origin
        self._cells.append(cell)

    def add_results(self, tasks: Sequence, results: Sequence) -> None:
        """Record one sweep grid from ``run_grid``'s tasks and results."""
        from repro.sim.parallel import TaskError  # runtime import: no cycle
        from repro.sim.results import RunResult

        for task, result in zip(tasks, results):
            if isinstance(result, RunResult):
                self.add_cell(
                    task.key,
                    result.workload,
                    source=result.source or "replayed",
                    wall_time_s=result.wall_time_s,
                    worker=result.worker,
                    ok=True,
                )
            elif isinstance(result, TaskError):
                self.add_cell(
                    task.key,
                    result.workload,
                    source="error",
                    wall_time_s=result.wall_time_s,
                    worker=result.worker,
                    ok=False,
                    error=result.error,
                )

    def set_meta(self, **entries) -> None:
        """Attach run parameters (config digests, store path, flags …)."""
        self.meta.update(entries)

    def build(self, span_events: Optional[Iterable[dict]] = None) -> dict:
        """The finished manifest dict (callable more than once)."""
        delta = diff_snapshots(self._registry.snapshot(), self._before)
        counters = delta.get("counters", {})
        by_source: Dict[str, int] = {}
        for cell in self._cells:
            by_source[cell["source"]] = by_source.get(cell["source"], 0) + 1
        events = (
            list(span_events) if span_events is not None else self._tracer.events()
        )
        return {
            "manifest_version": MANIFEST_VERSION,
            "command": self.command,
            "argv": self.argv,
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "started_at_unix": round(self.started_at_unix, 3),
            "wall_time_s": round(time.perf_counter() - self._started, 6),
            "grid": {"cells": len(self._cells)},
            "outcomes": {
                "store_hits": by_source.get("store", 0),
                "store_misses": by_source.get("replayed", 0)
                + by_source.get("error", 0),
                "analytic_pruned": by_source.get("analytic_pruned", 0),
                "skipped": by_source.get("skipped", 0),
                "errors": by_source.get("error", 0),
                "by_source": by_source,
            },
            "cells": list(self._cells),
            "store_io": {
                "read_bytes": counters.get("engine_store_read_bytes_total", 0),
                "written_bytes": counters.get("engine_store_written_bytes_total", 0),
            },
            "phase_times": phase_times(events),
            "metrics_delta": delta,
            # Structured-log records emitted during this run (bounded;
            # the ring may have wrapped under heavy logging).
            "log": log_ring().tail(
                min(max(0, len(log_ring()) - self._log_mark), 100)
            ),
            "meta": dict(self.meta),
        }

    def write(
        self,
        directory: Union[str, os.PathLike],
        span_events: Optional[Iterable[dict]] = None,
    ) -> Path:
        """Write the manifest into ``directory`` under a unique run name."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(self.started_at_unix))
        name = f"run-{stamp}-{os.getpid()}-{next(_RUN_SEQ)}.json"
        path = directory / name
        path.write_text(json.dumps(self.build(span_events), indent=2) + "\n")
        return path


def load_manifest(path: Union[str, os.PathLike]) -> dict:
    """Parse a manifest file, checking the schema version."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"{path}: manifest_version {version!r} != {MANIFEST_VERSION}"
        )
    return payload


def summarize(manifest: dict, top: int = 10) -> str:
    """Human-readable digest: slowest cells + phase-time breakdown."""
    lines: List[str] = []
    sha = manifest.get("git_sha") or "unknown"
    outcomes = manifest.get("outcomes", {})
    lines.append(
        f"{manifest.get('command', '?')}: {manifest['grid']['cells']} cells "
        f"in {manifest.get('wall_time_s', 0.0):.2f}s  (git {sha[:12]})"
    )
    lines.append(
        "outcomes        : "
        f"{outcomes.get('store_hits', 0)} store hits, "
        f"{outcomes.get('store_misses', 0)} store misses, "
        f"{outcomes.get('analytic_pruned', 0)} analytically pruned, "
        f"{outcomes.get('skipped', 0)} skipped, "
        f"{outcomes.get('errors', 0)} errors"
    )
    io = manifest.get("store_io", {})
    lines.append(
        f"store io        : {io.get('read_bytes', 0)} bytes read, "
        f"{io.get('written_bytes', 0)} bytes written"
    )
    cells = sorted(
        manifest.get("cells", ()), key=lambda c: c.get("wall_time_s", 0.0), reverse=True
    )
    if cells:
        lines.append(f"slowest {min(top, len(cells))} cells:")
        for cell in cells[:top]:
            status = "ok" if cell.get("ok", True) else f"ERROR {cell.get('error', '')}"
            lines.append(
                f"  {1e3 * cell.get('wall_time_s', 0.0):9.2f} ms  "
                f"{json.dumps(cell.get('key'))}  {cell.get('workload', '?'):12s} "
                f"{cell.get('source', '?'):14s} worker {cell.get('worker', 0)}  {status}"
            )
    phases = manifest.get("phase_times", {})
    if phases:
        lines.append("phase times (total across processes):")
        ordered = sorted(
            phases.items(), key=lambda item: item[1].get("total_ms", 0.0), reverse=True
        )
        for name, entry in ordered:
            line = (
                f"  {entry.get('total_ms', 0.0):10.2f} ms  {name:20s} "
                f"x{entry.get('count', 0)}  (max {entry.get('max_ms', 0.0):.2f} ms"
            )
            if "p95_ms" in entry:
                line += (
                    f", p50 {entry.get('p50_ms', 0.0):.2f}"
                    f", p95 {entry.get('p95_ms', 0.0):.2f}"
                    f", p99 {entry.get('p99_ms', 0.0):.2f}"
                )
            lines.append(line + ")")
    return "\n".join(lines)


def summarize_json(manifest: dict, top: int = 10) -> dict:
    """Machine-readable digest mirroring :func:`summarize`'s text.

    Same selection logic (top-k slowest cells, phases ordered by total
    time) but structured, for piping ``repro obs summarize --format
    json`` into jq or a dashboard.
    """
    cells = sorted(
        manifest.get("cells", ()), key=lambda c: c.get("wall_time_s", 0.0), reverse=True
    )
    phases = manifest.get("phase_times", {})
    return {
        "command": manifest.get("command"),
        "git_sha": manifest.get("git_sha"),
        "cells": manifest.get("grid", {}).get("cells", 0),
        "wall_time_s": manifest.get("wall_time_s", 0.0),
        "outcomes": dict(manifest.get("outcomes", {})),
        "store_io": dict(manifest.get("store_io", {})),
        "slowest_cells": cells[:top],
        "phase_times": {
            name: dict(entry)
            for name, entry in sorted(
                phases.items(),
                key=lambda item: item[1].get("total_ms", 0.0),
                reverse=True,
            )
        },
    }
