"""Incremental trace construction.

``Trace`` is immutable and array-backed; :class:`TraceBuilder` is the
efficient way to build one access by access (e.g. porting a real
algorithm whose address sequence is easier to emit than to vectorise).
Appends go into chunked buffers and are consolidated once at
:meth:`build`, so construction stays O(n) without numpy round-trips.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.trace.events import AccessKind, Trace

__all__ = ["TraceBuilder"]


class TraceBuilder:
    """Accumulates accesses and produces a :class:`Trace`.

    Args:
        with_pcs: record a PC per access (default off).
    """

    def __init__(self, with_pcs: bool = False):
        self._addrs: List[int] = []
        self._kinds: List[int] = []
        self._pcs: Optional[List[int]] = [] if with_pcs else None
        self._built = False

    def __len__(self) -> int:
        return len(self._addrs)

    @property
    def records_pcs(self) -> bool:
        return self._pcs is not None

    def _append(self, addr: int, kind: AccessKind, pc: int) -> "TraceBuilder":
        if self._built:
            raise RuntimeError("TraceBuilder already built; create a new one")
        self._addrs.append(addr)
        self._kinds.append(int(kind))
        if self._pcs is not None:
            self._pcs.append(pc)
        return self

    def read(self, addr: int, pc: int = 0) -> "TraceBuilder":
        """Append a data read (chainable)."""
        return self._append(addr, AccessKind.READ, pc)

    def write(self, addr: int, pc: int = 0) -> "TraceBuilder":
        """Append a data write (chainable)."""
        return self._append(addr, AccessKind.WRITE, pc)

    def ifetch(self, addr: int, pc: int = 0) -> "TraceBuilder":
        """Append an instruction fetch (chainable)."""
        return self._append(addr, AccessKind.IFETCH, pc)

    def extend(self, trace: Trace) -> "TraceBuilder":
        """Append a whole existing trace."""
        if self._built:
            raise RuntimeError("TraceBuilder already built; create a new one")
        self._addrs.extend(trace.addrs.tolist())
        self._kinds.extend(trace.kinds.tolist())
        if self._pcs is not None:
            self._pcs.extend(trace.pcs_or_zeros().tolist())
        return self

    def build(self) -> Trace:
        """Produce the trace; the builder cannot be reused afterwards."""
        if self._built:
            raise RuntimeError("TraceBuilder already built; create a new one")
        self._built = True
        pcs = (
            np.asarray(self._pcs, dtype=np.int64) if self._pcs is not None else None
        )
        return Trace(
            np.asarray(self._addrs, dtype=np.int64),
            np.asarray(self._kinds, dtype=np.uint8),
            pcs,
        )
