"""Trace combinators.

Workload models compose their traces out of kernel phases.  Real loop nests
interleave accesses to several arrays within one iteration (``a[i]``,
``b[i]``, ``c[i]`` in a vector add); :func:`interleave` reproduces that
fine-grained interleaving, which is what makes multi-way stream buffers
necessary (paper Section 3: "most programs access more than one array
inside a loop").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.trace.events import Trace

__all__ = ["interleave", "repeat", "take", "blocked_interleave"]


def interleave(traces: Sequence[Trace]) -> Trace:
    """Round-robin interleave several traces access by access.

    Traces may have different lengths; shorter traces simply drop out once
    exhausted (as an array swept by a shorter loop would).
    """
    traces = [t for t in traces if len(t)]
    if not traces:
        return Trace.empty()
    if len(traces) == 1:
        return traces[0]
    return blocked_interleave(traces, granule=1)


def blocked_interleave(traces: Sequence[Trace], granule: int) -> Trace:
    """Interleave traces in runs of ``granule`` accesses.

    ``granule=1`` is per-access round robin; larger granules model loop
    bodies that touch one array several times before moving to the next
    (e.g. a 5x5 block solve touching one block's worth of each matrix).
    """
    if granule <= 0:
        raise ValueError(f"granule must be positive, got {granule}")
    traces = [t for t in traces if len(t)]
    if not traces:
        return Trace.empty()
    if len(traces) == 1:
        return traces[0]
    total = sum(len(t) for t in traces)
    addrs = np.empty(total, dtype=np.int64)
    kinds = np.empty(total, dtype=np.uint8)
    cursors = [0] * len(traces)
    out = 0
    while out < total:
        progressed = False
        for i, trace in enumerate(traces):
            cursor = cursors[i]
            remaining = len(trace) - cursor
            if remaining <= 0:
                continue
            run = min(granule, remaining)
            addrs[out : out + run] = trace.addrs[cursor : cursor + run]
            kinds[out : out + run] = trace.kinds[cursor : cursor + run]
            cursors[i] = cursor + run
            out += run
            progressed = True
        if not progressed:  # pragma: no cover - defensive; loop invariant holds
            break
    return Trace(addrs[:out], kinds[:out])


def repeat(trace: Trace, times: int) -> Trace:
    """Concatenate ``times`` copies of ``trace`` (time steps of a solver)."""
    if times < 0:
        raise ValueError(f"times must be non-negative, got {times}")
    if times == 0 or not len(trace):
        return Trace.empty()
    return Trace(np.tile(trace.addrs, times), np.tile(trace.kinds, times))


def take(trace: Trace, n: int) -> Trace:
    """First ``n`` accesses of ``trace`` (all of it if shorter)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return Trace(trace.addrs[:n], trace.kinds[:n])
