"""Trace event model.

A trace is a sequence of memory accesses as seen by the processor: data
reads, data writes and instruction fetches.  For simulation speed, traces
are stored as a pair of parallel numpy arrays (:class:`Trace`) rather than
as one Python object per access; :class:`Access` is the per-event view used
at API boundaries and in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["AccessKind", "Access", "Trace"]


class AccessKind(enum.IntEnum):
    """Classification of a memory access."""

    READ = 0
    WRITE = 1
    IFETCH = 2

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE

    @property
    def is_instruction(self) -> bool:
        return self is AccessKind.IFETCH


class Access(NamedTuple):
    """A single memory access: byte address plus kind."""

    addr: int
    kind: AccessKind

    @classmethod
    def read(cls, addr: int) -> "Access":
        return cls(addr, AccessKind.READ)

    @classmethod
    def write(cls, addr: int) -> "Access":
        return cls(addr, AccessKind.WRITE)

    @classmethod
    def ifetch(cls, addr: int) -> "Access":
        return cls(addr, AccessKind.IFETCH)


@dataclass(frozen=True)
class Trace:
    """An address trace held as parallel numpy arrays.

    Attributes:
        addrs: int64 array of byte addresses.
        kinds: uint8 array of :class:`AccessKind` values, same length.
        pcs: optional int64 array of program-counter values, same length.
            PCs exist so that PC-indexed baselines (the Baer & Chen
            reference prediction table of the paper's related work) can
            be compared against the PC-free stream buffers; the stream
            machinery itself never reads them.
    """

    addrs: np.ndarray
    kinds: np.ndarray
    pcs: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.addrs.shape != self.kinds.shape:
            raise ValueError(
                f"addrs and kinds must have the same shape, got "
                f"{self.addrs.shape} vs {self.kinds.shape}"
            )
        if self.addrs.ndim != 1:
            raise ValueError(f"trace arrays must be 1-D, got {self.addrs.ndim}-D")
        if self.pcs is not None and self.pcs.shape != self.addrs.shape:
            raise ValueError(
                f"pcs must match addrs shape, got {self.pcs.shape} vs {self.addrs.shape}"
            )

    @property
    def has_pcs(self) -> bool:
        return self.pcs is not None

    @cached_property
    def has_ifetch(self) -> bool:
        """Whether any access is an instruction fetch.

        Cached on the instance (``cached_property`` writes straight into
        ``__dict__``, so it works on this frozen dataclass): replaying a
        memoized workload trace scans the kind array only once, not per
        simulation.
        """
        return bool(np.any(self.kinds == int(AccessKind.IFETCH)))

    def pcs_or_zeros(self) -> np.ndarray:
        """The PC array, or zeros for traces without PC information."""
        if self.pcs is not None:
            return self.pcs
        return np.zeros(self.addrs.shape, dtype=np.int64)

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls) -> "Trace":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8))

    @classmethod
    def from_arrays(cls, addrs: Sequence[int], kinds: Sequence[int]) -> "Trace":
        """Build a trace from any address/kind sequences (copied)."""
        return cls(
            np.asarray(addrs, dtype=np.int64).copy(),
            np.asarray(kinds, dtype=np.uint8).copy(),
        )

    @classmethod
    def from_accesses(cls, accesses: Iterable[Union[Access, Tuple[int, int]]]) -> "Trace":
        """Build a trace from an iterable of :class:`Access` (or tuples)."""
        pairs = list(accesses)
        if not pairs:
            return cls.empty()
        addrs = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        kinds = np.fromiter((int(p[1]) for p in pairs), dtype=np.uint8, count=len(pairs))
        return cls(addrs, kinds)

    @classmethod
    def uniform(cls, addrs: Sequence[int], kind: AccessKind = AccessKind.READ) -> "Trace":
        """Build a trace where every access has the same kind."""
        addr_arr = np.asarray(addrs, dtype=np.int64).copy()
        return cls(addr_arr, np.full(addr_arr.shape, int(kind), dtype=np.uint8))

    @classmethod
    def concat(cls, traces: Sequence["Trace"]) -> "Trace":
        """Concatenate traces back to back.

        If any part carries PCs, parts without them contribute zeros.
        """
        traces = [t for t in traces if len(t)]
        if not traces:
            return cls.empty()
        if len(traces) == 1:
            return traces[0]
        pcs = None
        if any(t.has_pcs for t in traces):
            pcs = np.concatenate([t.pcs_or_zeros() for t in traces])
        return cls(
            np.concatenate([t.addrs for t in traces]),
            np.concatenate([t.kinds for t in traces]),
            pcs,
        )

    # -- sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        return int(self.addrs.shape[0])

    def __iter__(self) -> Iterator[Access]:
        for addr, kind in zip(self.addrs.tolist(), self.kinds.tolist()):
            yield Access(addr, AccessKind(kind))

    def __getitem__(self, item) -> Union[Access, "Trace"]:
        if isinstance(item, slice):
            pcs = self.pcs[item] if self.pcs is not None else None
            return Trace(self.addrs[item], self.kinds[item], pcs)
        return Access(int(self.addrs[item]), AccessKind(int(self.kinds[item])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return bool(
            np.array_equal(self.addrs, other.addrs)
            and np.array_equal(self.kinds, other.kinds)
            and np.array_equal(self.pcs_or_zeros(), other.pcs_or_zeros())
        )

    # -- views ------------------------------------------------------------

    def data_only(self) -> "Trace":
        """Trace restricted to data accesses (reads and writes)."""
        mask = self.kinds != int(AccessKind.IFETCH)
        pcs = self.pcs[mask] if self.pcs is not None else None
        return Trace(self.addrs[mask], self.kinds[mask], pcs)

    def instructions_only(self) -> "Trace":
        """Trace restricted to instruction fetches."""
        mask = self.kinds == int(AccessKind.IFETCH)
        pcs = self.pcs[mask] if self.pcs is not None else None
        return Trace(self.addrs[mask], self.kinds[mask], pcs)

    def counts(self) -> dict:
        """Number of accesses of each kind, keyed by :class:`AccessKind`."""
        values, counts = np.unique(self.kinds, return_counts=True)
        result = {kind: 0 for kind in AccessKind}
        for value, count in zip(values.tolist(), counts.tolist()):
            result[AccessKind(value)] = count
        return result

    def to_accesses(self) -> List[Access]:
        """Materialise the trace as a list of :class:`Access`."""
        return list(self)
