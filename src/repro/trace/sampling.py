"""Time sampling of traces (paper Section 4.1).

The paper reduced trace size by switching tracing on for 10,000 references
and off for 90,000, sampling 10% of the reference stream.  This module
implements the same windowed sampler.  Time sampling introduces cold-start
bias at the head of each on-window (cache state is stale after a gap);
Kessler, Hill and Wood's techniques for correcting this are beyond what the
paper applies, so we reproduce the simple on/off scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.events import Trace

__all__ = ["TimeSampler", "time_sample"]


@dataclass(frozen=True)
class TimeSampler:
    """Windowed on/off sampler.

    Attributes:
        on_window: references traced per cycle (paper: 10,000).
        off_window: references skipped per cycle (paper: 90,000).
        phase: offset into the on/off cycle at which the trace starts.
    """

    on_window: int = 10_000
    off_window: int = 90_000
    phase: int = 0

    def __post_init__(self) -> None:
        if self.on_window <= 0:
            raise ValueError(f"on_window must be positive, got {self.on_window}")
        if self.off_window < 0:
            raise ValueError(f"off_window must be non-negative, got {self.off_window}")
        if self.phase < 0:
            raise ValueError(f"phase must be non-negative, got {self.phase}")

    @property
    def period(self) -> int:
        return self.on_window + self.off_window

    @property
    def sampling_ratio(self) -> float:
        """Fraction of references kept."""
        return self.on_window / self.period

    def mask(self, n: int) -> np.ndarray:
        """Boolean keep-mask for a trace of length ``n``."""
        positions = (np.arange(n, dtype=np.int64) + self.phase) % self.period
        return positions < self.on_window

    def sample(self, trace: Trace) -> Trace:
        """Return the sampled sub-trace."""
        if not len(trace):
            return trace
        mask = self.mask(len(trace))
        return Trace(trace.addrs[mask], trace.kinds[mask])


def time_sample(
    trace: Trace,
    on_window: int = 10_000,
    off_window: int = 90_000,
    phase: int = 0,
) -> Trace:
    """Convenience wrapper: sample ``trace`` with the paper's 10%/90% scheme."""
    return TimeSampler(on_window=on_window, off_window=off_window, phase=phase).sample(trace)
