"""Persistent on-disk store of L1 miss traces and replay results.

The paper's methodology — simulate the primary-cache miss stream once,
replay it under many stream configurations — is only cheap if the "once"
part actually happens once.  The in-process
:class:`~repro.sim.runner.MissTraceCache` gives that within a session;
this module extends it across processes and sessions:

* **traces/** — each ``(workload, scale, seed, L1 config, keep_pcs)``
  tuple hashes to a stable digest; the miss trace plus its
  :class:`~repro.sim.results.L1Summary` live in one compressed ``.npz``
  under that digest.  Loading a stored trace is exact: the arrays are
  ``int64``/``uint8`` and the summary's floats round-trip through JSON
  ``repr`` precision losslessly.
* **results/** — a replay of one :class:`~repro.core.config.StreamConfig`
  over a stored trace is itself deterministic, so the resulting
  :class:`~repro.core.prefetcher.StreamStats` (all-integer counters) is
  cached as JSON under a digest of ``(trace digest, config)``.  Warm
  figure sweeps then skip both the L1 simulation *and* the replay.
* **profiles/** — the single-pass stack-distance profiles of
  :mod:`repro.analytic.profile` are a pure function of the miss trace,
  so they are keyed by the *same* trace digest (one ``.npz`` holding
  every profiled block size).  Warm analytic Table-4 screens then skip
  the profiling pass too.

Robustness rules: every load returns ``None`` on any defect — missing
file, truncated archive, bad JSON, wrong format version — and the caller
recomputes and overwrites.  Writes go through a temp file + ``os.replace``
so a crashed run never leaves a partial archive behind.  Bump
:data:`STORE_FORMAT_VERSION` when the trace layout or the L1 simulator's
semantics change, and :data:`RESULT_FORMAT_VERSION` when the replay
semantics change; old entries then hash differently and die of neglect
(``prune`` removes them eagerly).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Tuple, Union

import numpy as np

from repro.obs.events import StoreEvent, record_event
from repro.obs.spans import get_tracer

# The cache/core layers import repro.trace.events at module scope, which
# runs this package's __init__ — so this module must not import them back
# at module scope.  Runtime imports happen inside the functions that need
# the classes (they are no-ops once the interpreter has warmed up).
# (repro.obs is dependency-free by contract, so importing it here is safe.)
if TYPE_CHECKING:  # pragma: no cover
    from repro.analytic.profile import LocalityProfile
    from repro.caches.cache import CacheConfig, MissTrace
    from repro.core.config import StreamConfig
    from repro.core.prefetcher import StreamStats
    from repro.mechanisms.base import MechanismConfig, MechStats
    from repro.sim.results import L1Summary
    from repro.trace.spectrum import MissSpectrum

__all__ = [
    "STORE_FORMAT_VERSION",
    "RESULT_FORMAT_VERSION",
    "MECH_RESULT_FORMAT_VERSION",
    "PROFILE_FORMAT_VERSION",
    "SPECTRUM_FORMAT_VERSION",
    "TraceStore",
    "canonical_scale",
    "trace_digest",
    "result_digest",
    "mech_result_digest",
    "stats_to_dict",
    "stats_from_dict",
    "mech_stats_to_dict",
    "mech_stats_from_dict",
]

#: Bump when the trace archive layout or the L1 simulation changes.
#: v2: compression preserves first-access miss kinds (dirty-carry) and
#: non-WB+WA configs simulate raw, so stored v1 miss traces are stale.
STORE_FORMAT_VERSION = 2

#: Bump when the stream replay semantics change (stale results must die).
RESULT_FORMAT_VERSION = 1

#: Bump when non-stream mechanism semantics change (victim shadow-tag
#: reconstruction, miss-cache invalidation, hybrid residual composition).
#: Stream-mechanism results ride on :data:`RESULT_FORMAT_VERSION` instead
#: so they stay interchangeable with ``run_streams`` results.
MECH_RESULT_FORMAT_VERSION = 1

#: Bump when the locality-profile layout or the profiling semantics
#: change (see :mod:`repro.analytic.profile`); stale profiles then load
#: as misses and are recomputed.
#: v2: profiles carry per-bucket footprint/demand arrays for the
#: combined-locality set-associative estimator, so v1 profiles are stale.
PROFILE_FORMAT_VERSION = 2

#: Bump when the miss-spectrum layout or the extraction semantics change
#: (see :mod:`repro.trace.spectrum`); stale spectra then load as misses
#: and are recomputed.
SPECTRUM_FORMAT_VERSION = 1

#: Everything a missing/truncated/foreign trace archive can raise.
#: ``np.load`` surfaces zip-container damage as ``BadZipFile``/``EOFError``
#: and member-decompression damage as ``zlib.error``.
_TRACE_DEFECTS = (
    OSError,
    KeyError,
    ValueError,
    TypeError,
    EOFError,
    json.JSONDecodeError,
    zipfile.BadZipFile,
    zlib.error,
)


def _canonical(payload: dict) -> str:
    """Deterministic JSON rendering used for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_scale(scale: float) -> float:
    """Collapse float-noise aliases of a workload scale.

    Scales arrive from CLI parsing, JSON round-trips and arithmetic like
    ``3 * 0.1``, so the same intended value can differ in the last few
    ulps (``0.3`` vs ``0.30000000000000004``).  Rounding through a
    12-significant-digit decimal rendering maps such aliases to one
    float, so in-process cache keys and on-disk digests agree.  Distinct
    intended scales are unaffected: no sweep in this repo distinguishes
    scales closer than one part in 1e12.  Idempotent.
    """
    return float(f"{float(scale):.12g}")


def trace_digest(
    workload: str,
    scale: float,
    seed: int,
    l1_config: CacheConfig,
    keep_pcs: bool = False,
) -> str:
    """Stable content key of one L1 simulation.

    Everything that determines the miss trace participates: the workload
    identity (name, scale, seed), the full L1 geometry/policy and whether
    PCs were propagated.  The format version is folded in so layout
    changes invalidate without a migration step.
    """
    payload = {
        "store_version": STORE_FORMAT_VERSION,
        "workload": workload,
        "scale": canonical_scale(scale),
        "seed": seed,
        "keep_pcs": keep_pcs,
        "l1": dataclasses.asdict(l1_config),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def result_digest(trace_key: str, config: StreamConfig) -> str:
    """Stable content key of one replay: trace digest x stream config."""
    payload = {
        "result_version": RESULT_FORMAT_VERSION,
        "trace": trace_key,
        "config": dataclasses.asdict(config),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def mech_result_digest(trace_key: str, mechanism: "MechanismConfig") -> str:
    """Stable content key of one mechanism replay.

    A ``streams`` mechanism delegates to :func:`result_digest` so stream
    results stay interchangeable between ``run_streams`` and the
    mechanism-generic path — a warm store from either serves both.  The
    other kinds fold the mechanism identity (the new key component) under
    their own format version.
    """
    if mechanism.kind == "streams":
        assert mechanism.streams is not None
        return result_digest(trace_key, mechanism.streams)
    payload = {
        "mech_result_version": MECH_RESULT_FORMAT_VERSION,
        "trace": trace_key,
        "mechanism": _mechanism_to_dict(mechanism),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def _mechanism_to_dict(mechanism: "MechanismConfig") -> dict:
    from repro.mechanisms.base import mechanism_to_dict

    return mechanism_to_dict(mechanism)


# -- StreamStats (de)serialisation -----------------------------------------

_COUNTER_FIELDS = (
    "demand_misses",
    "stream_hits",
    "in_flight_matches",
    "ifetch_misses",
    "writebacks",
    "invalidations",
    "prefetches_issued",
    "prefetches_used",
    "allocations",
    "unit_filter_hits",
    "unit_filter_misses",
    "detector_hits",
)


def stats_to_dict(stats: StreamStats) -> dict:
    """Flatten a :class:`StreamStats` to JSON-safe plain types.

    Exact by construction: every counter is an int, the config fields are
    ints/bools/strings, and the histogram buckets are (low, high) pairs.
    """
    from repro.core.lengths import LENGTH_BUCKETS

    lengths = stats.lengths
    return {
        "config": dataclasses.asdict(stats.config),
        "counters": {name: getattr(stats, name) for name in _COUNTER_FIELDS},
        "lengths": {
            "hits_by_bucket": [
                [low, high, lengths.hits_by_bucket[(low, high)]]
                for low, high in LENGTH_BUCKETS
            ],
            "streams_by_bucket": [
                [low, high, lengths.streams_by_bucket[(low, high)]]
                for low, high in LENGTH_BUCKETS
            ],
            "zero_length_streams": lengths.zero_length_streams,
        },
    }


def stats_from_dict(payload: dict) -> StreamStats:
    """Rebuild a :class:`StreamStats` written by :func:`stats_to_dict`.

    Raises:
        KeyError/TypeError/ValueError: on malformed payloads (callers
        treat any of these as a store miss).
    """
    from repro.core.config import StreamConfig
    from repro.core.lengths import StreamLengthHistogram
    from repro.core.prefetcher import StreamStats

    config = StreamConfig(**payload["config"])
    lengths = StreamLengthHistogram(
        hits_by_bucket={
            (low, high): count
            for low, high, count in payload["lengths"]["hits_by_bucket"]
        },
        streams_by_bucket={
            (low, high): count
            for low, high, count in payload["lengths"]["streams_by_bucket"]
        },
        zero_length_streams=payload["lengths"]["zero_length_streams"],
    )
    counters = payload["counters"]
    return StreamStats(
        config=config,
        lengths=lengths,
        **{name: int(counters[name]) for name in _COUNTER_FIELDS},
    )


# -- MechStats (de)serialisation --------------------------------------------

_MECH_COUNTER_FIELDS = (
    "demand_misses",
    "hits",
    "ifetch_misses",
    "writebacks",
    "invalidations",
    "allocations",
    "evictions",
    "writebacks_out",
    "prefetches_issued",
    "prefetches_used",
)


def mech_stats_to_dict(stats: "MechStats") -> dict:
    """Flatten a :class:`MechStats` to JSON-safe plain types (exact)."""
    from repro.mechanisms.base import mechanism_to_dict

    return {
        "mechanism": mechanism_to_dict(stats.config),
        "counters": {name: getattr(stats, name) for name in _MECH_COUNTER_FIELDS},
        "member_hits": list(stats.member_hits),
        "streams": None if stats.streams is None else stats_to_dict(stats.streams),
    }


def mech_stats_from_dict(payload: dict) -> "MechStats":
    """Rebuild a :class:`MechStats` written by :func:`mech_stats_to_dict`.

    Raises:
        KeyError/TypeError/ValueError: on malformed payloads (callers
        treat any of these as a store miss).
    """
    from repro.mechanisms.base import MechStats, mechanism_from_dict

    counters = payload["counters"]
    streams = payload.get("streams")
    return MechStats(
        config=mechanism_from_dict(payload["mechanism"]),
        member_hits=tuple(int(h) for h in payload.get("member_hits") or ()),
        streams=None if streams is None else stats_from_dict(streams),
        **{name: int(counters[name]) for name in _MECH_COUNTER_FIELDS},
    )


#: Orphaned temp files older than this (seconds) are reaped on open.
#: Generous: a temp file only outlives its writer if that writer died
#: mid-write, and an hour comfortably exceeds any legitimate write.
ORPHAN_TTL_SECONDS = 3600.0


class TraceStore:
    """Directory-backed store of miss traces and replay results.

    Safe for concurrent use by independent processes and threads:
    digests are content-addressed, writers stage to ``*.tmp`` files the
    readers' globs never match and then rename atomically, a losing
    racer's rename is treated as benign (the winner wrote identical
    bytes), and temp files orphaned by a crashed writer are reaped the
    next time a store is opened (:meth:`clean_orphans`).

    Args:
        root: store directory (created on first use).
        hooks: optional callback fired on every lookup/write with a
            typed :class:`~repro.obs.events.StoreEvent` —
            ``trace_hit``/``trace_miss``/``trace_saved``/
            ``result_hit``/``result_miss``/``result_saved``/
            ``profile_hit``/``profile_miss``/``profile_saved`` — which
            carries the entry digest, bytes moved and operation wall
            time.  ``StoreEvent`` subclasses ``str`` (equal to the
            event name), so PR 2-era ``Callable[[str], None]`` hooks
            keep working unchanged; :func:`repro.obs.events.
            as_legacy_hook` wraps hooks that need a plain ``str``.
            Hooks must be cheap and must not raise.  Independent of any
            hook, every event is folded into the process-global engine
            metrics registry (``engine_store_*``).
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        hooks: Optional[Callable[[str], None]] = None,
    ):
        self.root = Path(root)
        self.hooks = hooks
        self._traces_dir = self.root / "traces"
        self._results_dir = self.root / "results"
        self._profiles_dir = self.root / "profiles"
        self._spectra_dir = self.root / "spectra"
        self.clean_orphans(ORPHAN_TTL_SECONDS)

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r})"

    def _emit(
        self,
        name: str,
        digest: Optional[str] = None,
        nbytes: int = 0,
        duration_s: float = 0.0,
    ) -> None:
        event = StoreEvent(name, digest=digest, nbytes=nbytes, duration_s=duration_s)
        record_event(event, group="store")
        if self.hooks is not None:
            self.hooks(event)

    @staticmethod
    def _size_of(path: Path) -> int:
        """On-disk size of an entry, 0 when it is missing (racing writer)."""
        try:
            return path.stat().st_size
        except OSError:
            return 0

    # -- trace layer -------------------------------------------------------

    def trace_path(self, digest: str) -> Path:
        return self._traces_dir / f"{digest}.npz"

    def save_trace(
        self, digest: str, miss_trace: MissTrace, summary: "L1Summary"
    ) -> Path:
        """Persist one L1 simulation under its digest (atomic)."""
        meta = {
            "store_version": STORE_FORMAT_VERSION,
            "block_bits": miss_trace.block_bits,
            "summary": dataclasses.asdict(summary),
        }
        arrays = {
            "meta": np.frombuffer(_canonical(meta).encode(), dtype=np.uint8),
            "addrs": miss_trace.addrs,
            "kinds": miss_trace.kinds,
        }
        if miss_trace.pcs is not None:
            arrays["pcs"] = miss_trace.pcs
        path = self.trace_path(digest)

        def _write(tmp: str) -> None:
            # Hand savez an open handle: the temp name ends in ".tmp" and
            # numpy would otherwise append ".npz" to a bare path.
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **arrays)

        started = time.perf_counter()
        with get_tracer().span("store.save_trace", digest=digest[:12]):
            self._write_atomic(path, _write)
        self._emit(
            "trace_saved",
            digest=digest,
            nbytes=self._size_of(path),
            duration_s=time.perf_counter() - started,
        )
        return path

    def load_trace(self, digest: str) -> Optional[Tuple[MissTrace, "L1Summary"]]:
        """The stored (miss trace, L1 summary), or None on any defect."""
        from repro.caches.cache import MissTrace
        from repro.sim.results import L1Summary

        path = self.trace_path(digest)
        started = time.perf_counter()
        try:
            with get_tracer().span("store.load_trace", digest=digest[:12]):
                with np.load(path) as archive:
                    meta = json.loads(bytes(archive["meta"]).decode())
                    if meta["store_version"] != STORE_FORMAT_VERSION:
                        self._emit(
                            "trace_miss",
                            digest=digest,
                            duration_s=time.perf_counter() - started,
                        )
                        return None
                    pcs = None
                    if "pcs" in archive:
                        pcs = archive["pcs"].astype(np.int64, copy=True)
                    miss_trace = MissTrace(
                        archive["addrs"].astype(np.int64, copy=True),
                        archive["kinds"].astype(np.uint8, copy=True),
                        int(meta["block_bits"]),
                        pcs,
                    )
                    summary = L1Summary(**meta["summary"])
            self._emit(
                "trace_hit",
                digest=digest,
                nbytes=self._size_of(path),
                duration_s=time.perf_counter() - started,
            )
            return miss_trace, summary
        except _TRACE_DEFECTS:
            # Missing, truncated or foreign file: treat as a miss and let
            # the caller recompute (the rewrite heals the store).
            self._emit(
                "trace_miss", digest=digest, duration_s=time.perf_counter() - started
            )
            return None

    # -- result layer ------------------------------------------------------

    def result_path(self, digest: str) -> Path:
        return self._results_dir / f"{digest}.json"

    def save_result(self, digest: str, stats: StreamStats) -> Path:
        """Persist one replay's statistics under its digest (atomic)."""
        payload = {
            "result_version": RESULT_FORMAT_VERSION,
            "stats": stats_to_dict(stats),
        }
        path = self.result_path(digest)
        data = json.dumps(payload, sort_keys=True, indent=None)
        started = time.perf_counter()
        with get_tracer().span("store.save_result", digest=digest[:12]):
            self._write_atomic(path, lambda tmp: Path(tmp).write_text(data))
        self._emit(
            "result_saved",
            digest=digest,
            nbytes=len(data),
            duration_s=time.perf_counter() - started,
        )
        return path

    def load_result(self, digest: str) -> Optional[StreamStats]:
        """The stored replay statistics, or None on any defect."""
        path = self.result_path(digest)
        started = time.perf_counter()
        try:
            with get_tracer().span("store.load_result", digest=digest[:12]):
                text = path.read_text()
                payload = json.loads(text)
                if payload["result_version"] != RESULT_FORMAT_VERSION:
                    self._emit(
                        "result_miss",
                        digest=digest,
                        duration_s=time.perf_counter() - started,
                    )
                    return None
                stats = stats_from_dict(payload["stats"])
        except (OSError, KeyError, ValueError, TypeError):
            self._emit(
                "result_miss", digest=digest, duration_s=time.perf_counter() - started
            )
            return None
        self._emit(
            "result_hit",
            digest=digest,
            nbytes=len(text),
            duration_s=time.perf_counter() - started,
        )
        return stats

    def save_mech_result(self, digest: str, stats: "MechStats") -> Path:
        """Persist one mechanism replay's statistics (atomic).

        ``streams`` mechanisms are stored through :meth:`save_result`
        under the plain stream payload — their digest is the stream
        result digest, so either load path can serve either producer.
        """
        if stats.config.kind == "streams":
            assert stats.streams is not None
            return self.save_result(digest, stats.streams)
        payload = {
            "mech_result_version": MECH_RESULT_FORMAT_VERSION,
            "stats": mech_stats_to_dict(stats),
        }
        path = self.result_path(digest)
        data = json.dumps(payload, sort_keys=True, indent=None)
        started = time.perf_counter()
        with get_tracer().span("store.save_mech_result", digest=digest[:12]):
            self._write_atomic(path, lambda tmp: Path(tmp).write_text(data))
        self._emit(
            "result_saved",
            digest=digest,
            nbytes=len(data),
            duration_s=time.perf_counter() - started,
        )
        return path

    def load_mech_result(
        self, digest: str, mechanism: "MechanismConfig"
    ) -> Optional["MechStats"]:
        """The stored mechanism replay statistics, or None on any defect."""
        if mechanism.kind == "streams":
            from repro.mechanisms.streams import mech_stats_from_streams

            stream_stats = self.load_result(digest)
            if stream_stats is None:
                return None
            return mech_stats_from_streams(mechanism, stream_stats)
        path = self.result_path(digest)
        started = time.perf_counter()
        try:
            with get_tracer().span("store.load_mech_result", digest=digest[:12]):
                text = path.read_text()
                payload = json.loads(text)
                if payload["mech_result_version"] != MECH_RESULT_FORMAT_VERSION:
                    self._emit(
                        "result_miss",
                        digest=digest,
                        duration_s=time.perf_counter() - started,
                    )
                    return None
                stats = mech_stats_from_dict(payload["stats"])
        except (OSError, KeyError, ValueError, TypeError):
            self._emit(
                "result_miss", digest=digest, duration_s=time.perf_counter() - started
            )
            return None
        self._emit(
            "result_hit",
            digest=digest,
            nbytes=len(text),
            duration_s=time.perf_counter() - started,
        )
        return stats

    # -- profile layer -----------------------------------------------------

    def profile_path(self, digest: str) -> Path:
        return self._profiles_dir / f"{digest}.npz"

    def save_profiles(
        self, digest: str, profiles: "dict[int, LocalityProfile]"
    ) -> Path:
        """Persist a trace's locality profiles under its digest (atomic).

        ``profiles`` maps block size -> profile, as produced by
        :func:`repro.analytic.profile.profile_miss_trace`; every block
        size shares one archive so a lookup is a single read.
        """
        meta = {
            "profile_version": PROFILE_FORMAT_VERSION,
            "blocks": {
                str(block_size): {
                    "cold_reads": profile.cold_reads,
                    "cold_writes": profile.cold_writes,
                    "writebacks": profile.writebacks,
                    "unique_blocks": profile.unique_blocks,
                }
                for block_size, profile in profiles.items()
            },
        }
        arrays = {
            "meta": np.frombuffer(_canonical(meta).encode(), dtype=np.uint8),
        }
        for block_size, profile in profiles.items():
            arrays[f"read_hist_{block_size}"] = profile.read_hist
            arrays[f"write_hist_{block_size}"] = profile.write_hist
            if profile.bucket_footprint is not None:
                arrays[f"bucket_footprint_{block_size}"] = profile.bucket_footprint
            if profile.bucket_demand is not None:
                arrays[f"bucket_demand_{block_size}"] = profile.bucket_demand
        path = self.profile_path(digest)

        def _write(tmp: str) -> None:
            # Same open-handle trick as save_trace: the temp name ends in
            # ".tmp" and numpy would append ".npz" to a bare path.
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **arrays)

        started = time.perf_counter()
        with get_tracer().span("store.save_profiles", digest=digest[:12]):
            self._write_atomic(path, _write)
        self._emit(
            "profile_saved",
            digest=digest,
            nbytes=self._size_of(path),
            duration_s=time.perf_counter() - started,
        )
        return path

    def load_profiles(self, digest: str) -> Optional["dict[int, LocalityProfile]"]:
        """The stored locality profiles, or None on any defect."""
        from repro.analytic.profile import LocalityProfile

        path = self.profile_path(digest)
        started = time.perf_counter()
        try:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["meta"]).decode())
                if meta["profile_version"] != PROFILE_FORMAT_VERSION:
                    self._emit(
                        "profile_miss",
                        digest=digest,
                        duration_s=time.perf_counter() - started,
                    )
                    return None
                profiles = {}
                for key, counters in meta["blocks"].items():
                    block_size = int(key)
                    footprint = demand = None
                    if f"bucket_footprint_{block_size}" in archive:
                        footprint = archive[
                            f"bucket_footprint_{block_size}"
                        ].astype(np.int64, copy=True)
                    if f"bucket_demand_{block_size}" in archive:
                        demand = archive[f"bucket_demand_{block_size}"].astype(
                            np.int64, copy=True
                        )
                    profiles[block_size] = LocalityProfile(
                        block_size=block_size,
                        read_hist=archive[f"read_hist_{block_size}"].astype(
                            np.int64, copy=True
                        ),
                        write_hist=archive[f"write_hist_{block_size}"].astype(
                            np.int64, copy=True
                        ),
                        cold_reads=int(counters["cold_reads"]),
                        cold_writes=int(counters["cold_writes"]),
                        writebacks=int(counters["writebacks"]),
                        unique_blocks=int(counters["unique_blocks"]),
                        bucket_footprint=footprint,
                        bucket_demand=demand,
                    )
        except _TRACE_DEFECTS:
            self._emit(
                "profile_miss", digest=digest, duration_s=time.perf_counter() - started
            )
            return None
        self._emit(
            "profile_hit",
            digest=digest,
            nbytes=self._size_of(path),
            duration_s=time.perf_counter() - started,
        )
        return profiles

    # -- spectrum layer ----------------------------------------------------

    def spectrum_path(self, digest: str) -> Path:
        return self._spectra_dir / f"{digest}.npz"

    def save_spectrum(self, digest: str, spectrum: "MissSpectrum") -> Path:
        """Persist a trace's miss spectrum under its digest (atomic).

        One archive per trace digest, as produced by
        :func:`repro.trace.spectrum.extract_spectrum`; the analytic
        stream model evaluates every sweep config from this one entry.
        """
        meta = {
            "spectrum_version": SPECTRUM_FORMAT_VERSION,
            "scalars": {
                "block_bits": spectrum.block_bits,
                "n_events": spectrum.n_events,
                "demand_misses": spectrum.demand_misses,
                "writebacks": spectrum.writebacks,
                "ifetch_misses": spectrum.ifetch_misses,
                "lone_misses": spectrum.lone_misses,
                "seed_events": spectrum.seed_events,
                "alloc_events": spectrum.alloc_events,
                "window": spectrum.window,
                "zone_bits": spectrum.zone_bits,
            },
        }
        arrays = {
            "meta": np.frombuffer(_canonical(meta).encode(), dtype=np.uint8),
            "run_start_addr": spectrum.run_start_addr,
            "run_stride_bytes": spectrum.run_stride_bytes,
            "run_length": spectrum.run_length,
            "run_wb_next": spectrum.run_wb_next,
            "run_wb_window": spectrum.run_wb_window,
            "run_primer_age": spectrum.run_primer_age,
            "run_kind": spectrum.run_kind,
            "run_byte_uniform": spectrum.run_byte_uniform,
            "run_gaps_ge": spectrum.run_gaps_ge,
            "run_conc_ge": spectrum.run_conc_ge,
        }
        path = self.spectrum_path(digest)

        def _write(tmp: str) -> None:
            # Same open-handle trick as save_trace: the temp name ends in
            # ".tmp" and numpy would append ".npz" to a bare path.
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **arrays)

        started = time.perf_counter()
        with get_tracer().span("store.save_spectrum", digest=digest[:12]):
            self._write_atomic(path, _write)
        self._emit(
            "spectrum_saved",
            digest=digest,
            nbytes=self._size_of(path),
            duration_s=time.perf_counter() - started,
        )
        return path

    def load_spectrum(self, digest: str) -> Optional["MissSpectrum"]:
        """The stored miss spectrum, or None on any defect."""
        from repro.trace.spectrum import MissSpectrum

        path = self.spectrum_path(digest)
        started = time.perf_counter()
        try:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["meta"]).decode())
                if meta["spectrum_version"] != SPECTRUM_FORMAT_VERSION:
                    self._emit(
                        "spectrum_miss",
                        digest=digest,
                        duration_s=time.perf_counter() - started,
                    )
                    return None
                scalars = meta["scalars"]
                spectrum = MissSpectrum(
                    block_bits=int(scalars["block_bits"]),
                    n_events=int(scalars["n_events"]),
                    demand_misses=int(scalars["demand_misses"]),
                    writebacks=int(scalars["writebacks"]),
                    ifetch_misses=int(scalars["ifetch_misses"]),
                    lone_misses=int(scalars["lone_misses"]),
                    seed_events=int(scalars["seed_events"]),
                    alloc_events=int(scalars["alloc_events"]),
                    run_start_addr=archive["run_start_addr"].astype(
                        np.int64, copy=True
                    ),
                    run_stride_bytes=archive["run_stride_bytes"].astype(
                        np.int64, copy=True
                    ),
                    run_length=archive["run_length"].astype(np.int64, copy=True),
                    run_wb_next=archive["run_wb_next"].astype(np.int64, copy=True),
                    run_wb_window=archive["run_wb_window"].astype(
                        np.int64, copy=True
                    ),
                    run_primer_age=archive["run_primer_age"].astype(
                        np.int64, copy=True
                    ),
                    run_kind=archive["run_kind"].astype(np.uint8, copy=True),
                    run_byte_uniform=archive["run_byte_uniform"].astype(
                        np.uint8, copy=True
                    ),
                    run_gaps_ge=archive["run_gaps_ge"].astype(np.int64, copy=True),
                    run_conc_ge=archive["run_conc_ge"].astype(np.int64, copy=True),
                    window=int(scalars["window"]),
                    zone_bits=int(scalars["zone_bits"]),
                )
        except _TRACE_DEFECTS:
            self._emit(
                "spectrum_miss",
                digest=digest,
                duration_s=time.perf_counter() - started,
            )
            return None
        self._emit(
            "spectrum_hit",
            digest=digest,
            nbytes=self._size_of(path),
            duration_s=time.perf_counter() - started,
        )
        return spectrum

    # -- blob layer (fleet replication) ------------------------------------
    #
    # Workers in a sweep fleet replicate entries by digest: a worker that
    # misses locally fetches the raw on-disk bytes of an entry from the
    # frontend (or a peer) over HTTP and ingests them verbatim.  Content
    # addressing makes this trivially safe — the bytes under a digest are
    # identical on every host that has them — and the usual robustness
    # rule still applies on top: a corrupt transfer loads as a miss and
    # is recomputed/overwritten locally.

    #: Blob kinds the replication layer moves, mapped to path resolvers.
    BLOB_KINDS = ("trace", "result", "profile", "spectrum")

    def blob_path(self, kind: str, digest: str) -> Path:
        """On-disk path of one entry, by blob kind."""
        if kind == "trace":
            return self.trace_path(digest)
        if kind == "result":
            return self.result_path(digest)
        if kind == "profile":
            return self.profile_path(digest)
        if kind == "spectrum":
            return self.spectrum_path(digest)
        raise ValueError(f"unknown blob kind {kind!r}; known: {self.BLOB_KINDS}")

    def has_blob(self, kind: str, digest: str) -> bool:
        """Cheap existence probe (no content validation)."""
        return self.blob_path(kind, digest).is_file()

    def read_blob(self, kind: str, digest: str) -> Optional[bytes]:
        """The raw stored bytes of one entry, or None when absent.

        This is what the service's ``GET /v1/blob/<kind>/<digest>``
        endpoint serves; readers never see a torn write because writers
        stage to ``*.tmp`` and rename.
        """
        path = self.blob_path(kind, digest)
        started = time.perf_counter()
        try:
            data = path.read_bytes()
        except OSError:
            return None
        self._emit(
            f"{kind}_blob_read",
            digest=digest,
            nbytes=len(data),
            duration_s=time.perf_counter() - started,
        )
        return data

    def ingest_blob(self, kind: str, digest: str, data: bytes) -> Path:
        """Install raw entry bytes fetched from a peer (atomic).

        No validation happens here: the digest is the contract, and the
        next ``load_*`` call validates format version and structure,
        degrading a bad transfer to an ordinary miss.
        """
        path = self.blob_path(kind, digest)
        started = time.perf_counter()
        self._write_atomic(path, lambda tmp: Path(tmp).write_bytes(data))
        self._emit(
            f"{kind}_blob_ingested",
            digest=digest,
            nbytes=len(data),
            duration_s=time.perf_counter() - started,
        )
        return path

    # -- maintenance -------------------------------------------------------

    def __len__(self) -> int:
        """Stored trace archives (results are not counted)."""
        if not self._traces_dir.is_dir():
            return 0
        return sum(1 for _ in self._traces_dir.glob("*.npz"))

    def n_results(self) -> int:
        if not self._results_dir.is_dir():
            return 0
        return sum(1 for _ in self._results_dir.glob("*.json"))

    def n_profiles(self) -> int:
        if not self._profiles_dir.is_dir():
            return 0
        return sum(1 for _ in self._profiles_dir.glob("*.npz"))

    def n_spectra(self) -> int:
        if not self._spectra_dir.is_dir():
            return 0
        return sum(1 for _ in self._spectra_dir.glob("*.npz"))

    def prune(self) -> int:
        """Delete entries whose format version is stale; return the count."""
        removed = 0
        for path in self._traces_dir.glob("*.npz") if self._traces_dir.is_dir() else ():
            try:
                with np.load(path) as archive:
                    meta = json.loads(bytes(archive["meta"]).decode())
                    ok = meta["store_version"] == STORE_FORMAT_VERSION
            except _TRACE_DEFECTS:
                ok = False
            if not ok:
                path.unlink(missing_ok=True)
                removed += 1
        for path in (
            self._results_dir.glob("*.json") if self._results_dir.is_dir() else ()
        ):
            try:
                payload = json.loads(path.read_text())
                if "mech_result_version" in payload:
                    ok = payload["mech_result_version"] == MECH_RESULT_FORMAT_VERSION
                else:
                    ok = payload["result_version"] == RESULT_FORMAT_VERSION
            except (OSError, KeyError, ValueError):
                ok = False
            if not ok:
                path.unlink(missing_ok=True)
                removed += 1
        for path in (
            self._profiles_dir.glob("*.npz") if self._profiles_dir.is_dir() else ()
        ):
            try:
                with np.load(path) as archive:
                    meta = json.loads(bytes(archive["meta"]).decode())
                    ok = meta["profile_version"] == PROFILE_FORMAT_VERSION
            except _TRACE_DEFECTS:
                ok = False
            if not ok:
                path.unlink(missing_ok=True)
                removed += 1
        for path in (
            self._spectra_dir.glob("*.npz") if self._spectra_dir.is_dir() else ()
        ):
            try:
                with np.load(path) as archive:
                    meta = json.loads(bytes(archive["meta"]).decode())
                    ok = meta["spectrum_version"] == SPECTRUM_FORMAT_VERSION
            except _TRACE_DEFECTS:
                ok = False
            if not ok:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> None:
        """Delete every stored trace, result, profile and spectrum."""
        for directory in (
            self._traces_dir,
            self._results_dir,
            self._profiles_dir,
            self._spectra_dir,
        ):
            if directory.is_dir():
                for path in directory.iterdir():
                    path.unlink(missing_ok=True)

    def _fs_now(self) -> float:
        """The filesystem's notion of "now", for mtime-age comparisons.

        ``clean_orphans`` ages ``*.tmp`` files by their mtime, which the
        filesystem stamped — so the reference point must come from the
        same clock.  Comparing mtimes against ``time.time()`` breaks
        under an NTP step: a backward step makes a fresh temp file look
        ancient and reaps an in-flight writer's staging file.  Writing a
        probe file and reading its mtime measures the filesystem clock
        directly; the probe's name shape (no ``.tmp``/``.npz``/``.json``
        suffix) is invisible to every store glob.  Falls back to
        ``time.time()`` when no layer directory exists yet or the probe
        fails — in that degraded case there is nothing to reap anyway, or
        the same OSError will skip the reaping loop too.
        """
        for directory in (
            self._traces_dir,
            self._results_dir,
            self._profiles_dir,
            self._spectra_dir,
        ):
            if not directory.is_dir():
                continue
            try:
                fd, probe = tempfile.mkstemp(
                    dir=directory, prefix=".clock.", suffix=".probe"
                )
                try:
                    os.close(fd)
                    return os.stat(probe).st_mtime
                finally:
                    os.unlink(probe)
            except OSError:
                continue
        return time.time()

    def clean_orphans(self, max_age_seconds: float = 0.0) -> int:
        """Reap ``*.tmp`` staging files older than ``max_age_seconds``.

        A writer that dies between ``mkstemp`` and the rename leaves its
        temp file behind.  Those files are invisible to every lookup (the
        readers glob ``*.npz``/``*.json``) but accumulate on disk, so
        opening a store sweeps out any old enough that their writer must
        be gone.  Live writers are protected by the age threshold — and a
        lost race with one merely re-orphans a file the next open reaps.
        Ages are measured against the filesystem clock (:meth:`_fs_now`),
        not the process wall clock, so an NTP step cannot make a fresh
        staging file look old.

        Returns:
            Number of temp files removed.
        """
        removed = 0
        now = self._fs_now()
        for directory in (
            self._traces_dir,
            self._results_dir,
            self._profiles_dir,
            self._spectra_dir,
        ):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.tmp"):
                try:
                    if now - path.stat().st_mtime >= max_age_seconds:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue  # racing reaper/writer got there first
        return removed

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, write) -> None:
        """Run ``write(tmp_path)`` then rename over ``path``.

        The staging file lives beside the target as
        ``<name>.<random>.tmp`` so readers' ``*.npz``/``*.json`` globs
        never observe a torn write.  Concurrent writers race benignly:
        content addressing means both produced identical bytes, so if the
        rename itself fails but the target exists, the other writer won
        and this write is complete by proxy.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
        os.close(fd)
        try:
            write(tmp)
            try:
                os.replace(tmp, path)
            except OSError:
                # FileExistsError/PermissionError from a racing rename
                # (Windows semantics); benign iff the winner's file is
                # in place.
                if not path.exists():
                    raise
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
