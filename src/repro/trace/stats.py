"""Descriptive statistics over address traces.

These are diagnostic tools used to sanity-check the synthetic workload
models against the access-pattern structure the paper attributes to each
benchmark: how much of the trace is unit-stride streaming, what the stride
spectrum looks like, and how big the touched data set is.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.mem.address import AddressSpace
from repro.trace.events import Trace

__all__ = ["TraceProfile", "profile_trace", "block_run_lengths", "stride_histogram"]


def stride_histogram(trace: Trace, top: int = 10) -> Dict[int, int]:
    """Histogram of byte-address deltas between consecutive data accesses.

    Returns the ``top`` most common deltas (instruction fetches excluded).
    """
    data = trace.data_only()
    if len(data) < 2:
        return {}
    deltas = np.diff(data.addrs)
    counter = Counter(deltas.tolist())
    return dict(counter.most_common(top))


def block_run_lengths(trace: Trace, space: AddressSpace = AddressSpace()) -> Dict[int, int]:
    """Histogram of lengths of maximal runs of *consecutive blocks*.

    A run of length L means the data-access block stream contained blocks
    ``b, b+1, ..., b+L-1`` in order (repeats of the same block extend
    nothing).  Long runs are what unit-stride stream buffers exploit.
    """
    data = trace.data_only()
    if not len(data):
        return {}
    blocks = (data.addrs >> space.block_bits).tolist()
    runs: Counter = Counter()
    run_len = 1
    prev = blocks[0]
    for block in blocks[1:]:
        if block == prev:
            continue
        if block == prev + 1:
            run_len += 1
        else:
            runs[run_len] += 1
            run_len = 1
        prev = block
    runs[run_len] += 1
    return dict(runs)


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of a trace.

    Attributes:
        length: total accesses.
        data_accesses: data reads + writes.
        writes: data writes.
        ifetches: instruction fetches.
        unique_blocks: distinct cache blocks touched by data accesses.
        footprint_bytes: unique_blocks * block_size.
        unit_stride_fraction: fraction of consecutive data-access pairs
            whose byte delta is in ``(0, block_size]`` — a proxy for
            unit-stride streaming.
        mean_block_run: mean length of consecutive-block runs.
    """

    length: int
    data_accesses: int
    writes: int
    ifetches: int
    unique_blocks: int
    footprint_bytes: int
    unit_stride_fraction: float
    mean_block_run: float


def profile_trace(trace: Trace, space: AddressSpace = AddressSpace()) -> TraceProfile:
    """Compute a :class:`TraceProfile` for ``trace``."""
    data = trace.data_only()
    n_data = len(data)
    writes = int(np.count_nonzero(data.kinds == 1))
    ifetches = len(trace) - n_data
    if n_data:
        unique_blocks = int(np.unique(data.addrs >> space.block_bits).shape[0])
    else:
        unique_blocks = 0
    if n_data >= 2:
        deltas = np.diff(data.addrs)
        unit = np.count_nonzero((deltas > 0) & (deltas <= space.block_size))
        unit_fraction = float(unit / deltas.shape[0])
    else:
        unit_fraction = 0.0
    runs = block_run_lengths(trace, space)
    total_runs = sum(runs.values())
    mean_run = (
        sum(length * count for length, count in runs.items()) / total_runs
        if total_runs
        else 0.0
    )
    return TraceProfile(
        length=len(trace),
        data_accesses=n_data,
        writes=writes,
        ifetches=ifetches,
        unique_blocks=unique_blocks,
        footprint_bytes=unique_blocks * space.block_size,
        unit_stride_fraction=unit_fraction,
        mean_block_run=mean_run,
    )
