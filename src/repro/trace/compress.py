"""Exact trace compression for cache simulation.

Long unit-stride sweeps touch every word of a block before moving on, so a
raw word-granular trace contains runs of adjacent accesses to the same
cache block.  The *second and later* accesses of such a run are guaranteed
L1 hits — the block was touched by the immediately preceding access and no
intervening access to the same cache could have evicted it — and (for LRU,
FIFO and random replacement alike) they change no replacement state.  They
can therefore be collapsed without changing which accesses miss.

The collapse is exact provided three details are preserved:

* **Kind.** The collapsed access keeps the *first* access's kind: that is
  the access that can miss, so the miss event's READ/WRITE classification
  (and the read/write miss statistics) match the uncompressed simulation.
* **Dirtiness.** If any access in the run is a write, the run leaves the
  block dirty even when its first access was a read (a read miss followed
  by write hits).  That is carried separately in the ``dirty`` array so a
  write-back/write-allocate cache can mark the block without mislabelling
  the miss event — under those policies the resulting cache state and
  write-back traffic are identical to the uncompressed run.
* **Cache identity.** Instruction fetches go to a different cache than data
  accesses, so a run is broken when the access switches between the two.

Per-access hit counts are recoverable from the returned run ``weights``:
the number of misses on the compressed trace equals the number of misses on
the original, and original hits = ``weights.sum() - misses``.

The dirtiness argument relies on write-back/write-allocate semantics
(collapsed write *hits* generate no traffic of their own); for
write-through or no-write-allocate caches, per-write traffic events would
be lost, so such caches must simulate the raw trace
(:meth:`~repro.caches.cache.Cache.simulate` rejects ``dirty`` for them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mem.address import AddressSpace
from repro.trace.events import AccessKind, Trace

__all__ = ["CompressedTrace", "compress_consecutive"]


@dataclass(frozen=True)
class CompressedTrace:
    """A compressed trace plus per-access run weights.

    Attributes:
        trace: one access per run of adjacent same-block accesses, carrying
            the *first* access's kind.
        weights: int64 array, ``weights[i]`` = number of original accesses
            collapsed into ``trace[i]``.
        dirty: bool array, ``dirty[i]`` = the run contained at least one
            write, so the block must end up dirty even if ``trace[i]`` is
            a read (pass to :meth:`~repro.caches.cache.Cache.simulate`).
    """

    trace: Trace
    weights: np.ndarray
    dirty: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.trace) != self.weights.shape[0]:
            raise ValueError(
                f"trace length {len(self.trace)} != weights length "
                f"{self.weights.shape[0]}"
            )
        if self.dirty is not None and self.dirty.shape[0] != len(self.trace):
            raise ValueError(
                f"trace length {len(self.trace)} != dirty length "
                f"{self.dirty.shape[0]}"
            )

    @property
    def original_length(self) -> int:
        """Length of the trace before compression."""
        return int(self.weights.sum())

    @property
    def compression_ratio(self) -> float:
        """Original length divided by compressed length (>= 1)."""
        if not len(self.trace):
            return 1.0
        return self.original_length / len(self.trace)


def compress_consecutive(trace: Trace, space: AddressSpace = AddressSpace()) -> CompressedTrace:
    """Collapse runs of adjacent same-block accesses.

    Args:
        trace: the raw trace.
        space: address-space geometry providing the block size.

    Returns:
        A :class:`CompressedTrace`; for any write-back write-allocate
        set-associative cache with blocks of ``space.block_size`` bytes the
        compressed trace (with its ``dirty`` flags) misses exactly where
        the original trace misses and emits the identical miss/write-back
        event stream.
    """
    n = len(trace)
    if n == 0:
        return CompressedTrace(trace, np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))

    blocks = trace.addrs >> space.block_bits
    is_ifetch = trace.kinds == int(AccessKind.IFETCH)
    same_run = (blocks[1:] == blocks[:-1]) & (is_ifetch[1:] == is_ifetch[:-1])
    run_start = np.empty(n, dtype=bool)
    run_start[0] = True
    run_start[1:] = ~same_run
    starts = np.flatnonzero(run_start)

    weights = np.diff(np.append(starts, n)).astype(np.int64)
    kept_addrs = trace.addrs[starts].copy()

    # The first access of a run is the one that can miss, so its kind is
    # the event kind; a write anywhere in the run dirties the block.
    is_write = trace.kinds == int(AccessKind.WRITE)
    run_has_write = np.add.reduceat(is_write.astype(np.int64), starts) > 0
    kept_kinds = trace.kinds[starts].copy()

    kept_pcs = trace.pcs[starts].copy() if trace.pcs is not None else None
    return CompressedTrace(Trace(kept_addrs, kept_kinds, kept_pcs), weights, run_has_write)
