"""Trace persistence.

Traces can be saved to ``.npz`` (compact, lossless) or dumped as text for
inspection.  The on-disk format is versioned so that future layout changes
can stay backward compatible.
"""

from __future__ import annotations

import os
from typing import TextIO, Union

import numpy as np

from repro.trace.events import AccessKind, Trace

__all__ = ["save_trace", "load_trace", "dump_text", "parse_text"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Save ``trace`` to ``path`` as a compressed ``.npz`` archive."""
    arrays = {
        "version": np.int64(_FORMAT_VERSION),
        "addrs": trace.addrs,
        "kinds": trace.kinds,
    }
    if trace.pcs is not None:
        arrays["pcs"] = trace.pcs
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    Raises:
        ValueError: if the file is not a recognised trace archive.
    """
    with np.load(path) as archive:
        if "version" not in archive or "addrs" not in archive or "kinds" not in archive:
            raise ValueError(f"{path} is not a repro trace archive")
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        pcs = None
        if "pcs" in archive:
            pcs = archive["pcs"].astype(np.int64, copy=True)
        return Trace(
            archive["addrs"].astype(np.int64, copy=True),
            archive["kinds"].astype(np.uint8, copy=True),
            pcs,
        )


_KIND_LETTER = {AccessKind.READ: "R", AccessKind.WRITE: "W", AccessKind.IFETCH: "I"}
_LETTER_KIND = {letter: kind for kind, letter in _KIND_LETTER.items()}


def dump_text(trace: Trace, out: TextIO) -> None:
    """Write ``trace`` as one ``<letter> <hex-addr>`` line per access."""
    for access in trace:
        out.write(f"{_KIND_LETTER[access.kind]} {access.addr:#x}\n")


def parse_text(lines) -> Trace:
    """Parse the format written by :func:`dump_text`.

    Blank lines and lines starting with ``#`` are ignored.

    Raises:
        ValueError: on a malformed line.
    """
    addrs = []
    kinds = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in _LETTER_KIND:
            raise ValueError(f"malformed trace line {lineno}: {raw!r}")
        addrs.append(int(parts[1], 0))
        kinds.append(int(_LETTER_KIND[parts[0]]))
    return Trace.from_arrays(addrs, kinds)
