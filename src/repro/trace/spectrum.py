"""Run-length/stride spectrum extraction from L1 miss traces.

The paper's Sections 5-8 argue that a stream buffer's hit rate is a
function of the miss stream's *structure*: how long the sequential and
strided runs are, how runs interleave, and how often write-backs land on
a run's prefetch window.  This module extracts exactly that structure in
one pass so :mod:`repro.analytic.streams` can evaluate every
``n_streams``/filter/czone configuration in closed form, without replay.

The decomposition is **configuration-free** and deterministic; it is the
contract the analytic model consumes and the differ's naive reference
(:func:`naive_spectrum`) re-implements independently:

* Each demand miss (read/write/ifetch alike — the model handles lane
  partitioning) either **continues** an open run, **seeds** a new run, or
  is a **lone** miss.
* A run is continued when the miss's block equals the run's expected
  next block; the expectation then advances by the run's stride.  If the
  advanced expectation collides with another open run's, the run closes.
* An ascending (descending) unit run is seeded when the previous block
  ``b-1`` (next block ``b+1``) sits in a :data:`SPECTRUM_WINDOW`-entry
  recency window of lone-miss blocks — the idealized analogue of the
  Section 6 unit-stride filter, generous enough to cover every filter
  capacity the sweeps use.  The matching window entry is consumed; the
  run opens with length 2 (primer + seeder) and records the primer's
  *age* (allocation events since the primer was inserted) so the model
  can tell whether a real, finite filter would still hold the primer.
* A non-unit run is seeded exactly like the Section 7 czone FSM, but
  over generous :data:`SPECTRUM_ZONE_BITS` partitions: two equal,
  block-advancing deltas within one partition open a run of length 3.
  The run records its true start address and byte stride, so the model
  can replay the *config's* czone training walk arithmetically.
* Anything else is a lone miss: it enters the recency window and the
  partition table, and bumps the global **allocation-pressure** counter
  (lone misses and run seeds are the events that displace filter and
  stream state).
* Per run, per gap between consecutive tracked elements, two pressure
  statistics are folded into small histograms.  ``conc_ge[k]`` counts
  gaps with at least ``k+1`` *distinct other runs* interleaving a
  tracked element into the gap — each such run claims one stream slot
  (by allocation or LRU refresh), so this is what evicts a filtered
  config's streams.  ``gaps_ge[k]`` counts gaps whose *combined*
  pressure — interleaved-run count plus lone misses in the gap — is at
  least ``k+1``; lone misses additionally claim slots when every miss
  allocates (unfiltered configs).  Both bound survival under a finite
  ``n_streams``.
* A write-back whose block lands on an open run's next expected block
  increments the run's ``wb_next`` (a stream-entry invalidation the
  model charges a retrain for); within the next
  :data:`WB_WINDOW_STRIDES` strides it increments ``wb_window`` (a
  possible deeper-entry invalidation the model folds into its error
  bound).

:func:`extract_spectrum` is the O(n) production pass (dict-based);
:func:`naive_spectrum` is a deliberately simple O(n^2) re-derivation
(linear scans, gap statistics recounted from a flat per-event log) used
by the ``analytic-streams`` differ stage, which demands the two be
bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.caches.cache import MissEventKind, MissTrace

__all__ = [
    "SPECTRUM_WINDOW",
    "SPECTRUM_ZONE_BITS",
    "GAP_PRESSURE_BINS",
    "WB_WINDOW_STRIDES",
    "RUN_KIND_UNIT",
    "RUN_KIND_ZONE",
    "MissSpectrum",
    "extract_spectrum",
    "naive_spectrum",
    "block_stride",
]

#: Lone-miss recency window for unit-pair seeding.  Must comfortably
#: exceed every swept unit-filter capacity (4/16); a primer older than
#: the *config's* capacity is flagged via ``run_primer_age`` instead of
#: being dropped here.
SPECTRUM_WINDOW = 64

#: Concentration-zone bits of the extraction's stride FSM.  Generous
#: (2 MB zones) so the extraction sees strided runs that any swept
#: ``czone_bits`` could catch; the model narrows per config.
SPECTRUM_ZONE_BITS = 21

#: ``gaps_ge`` histogram depth: enough to cover every swept n_streams.
GAP_PRESSURE_BINS = 16

#: Write-backs within this many strides of a run's expectation count as
#: potential deeper-entry invalidations (``wb_window``).
WB_WINDOW_STRIDES = 4

RUN_KIND_UNIT = 0
RUN_KIND_ZONE = 1


def block_stride(delta_bytes: int, block_bits: int) -> int:
    """Byte stride -> block stride, rounding toward zero (czone rule)."""
    if delta_bytes >= 0:
        return delta_bytes >> block_bits
    return -((-delta_bytes) >> block_bits)


@dataclass(frozen=True)
class MissSpectrum:
    """The run-length/stride spectrum of one miss trace.

    Parallel per-run arrays (run creation order) plus global counters.
    All arrays are int64 except ``run_kind`` (uint8); ``run_gaps_ge`` is
    ``(n_runs, GAP_PRESSURE_BINS)``.
    """

    block_bits: int
    n_events: int
    demand_misses: int
    writebacks: int
    ifetch_misses: int
    lone_misses: int
    seed_events: int
    alloc_events: int
    run_start_addr: np.ndarray
    run_stride_bytes: np.ndarray
    run_length: np.ndarray
    run_wb_next: np.ndarray
    run_wb_window: np.ndarray
    run_primer_age: np.ndarray
    run_kind: np.ndarray
    run_byte_uniform: np.ndarray
    run_gaps_ge: np.ndarray
    run_conc_ge: np.ndarray
    window: int = SPECTRUM_WINDOW
    zone_bits: int = SPECTRUM_ZONE_BITS

    @property
    def n_runs(self) -> int:
        return int(len(self.run_length))

    @property
    def run_stride_blocks(self) -> np.ndarray:
        """Per-run stride in blocks (czone rounding toward zero)."""
        down = -((-self.run_stride_bytes) >> self.block_bits)
        up = self.run_stride_bytes >> self.block_bits
        return np.where(self.run_stride_bytes >= 0, up, down)

    @property
    def run_misses(self) -> int:
        """Demand misses covered by some run (primers included)."""
        return int(self.run_length.sum())

    def stride_histogram(self) -> Dict[int, int]:
        """Block-stride -> total run misses, for display/exhibits."""
        out: Dict[int, int] = {}
        for stride, length in zip(
            self.run_stride_blocks.tolist(), self.run_length.tolist()
        ):
            out[stride] = out.get(stride, 0) + length
        return out

    def __eq__(self, other: object) -> bool:  # array fields need np comparison
        if not isinstance(other, MissSpectrum):
            return NotImplemented
        scalars = (
            "block_bits",
            "n_events",
            "demand_misses",
            "writebacks",
            "ifetch_misses",
            "lone_misses",
            "seed_events",
            "alloc_events",
            "window",
            "zone_bits",
        )
        if any(getattr(self, name) != getattr(other, name) for name in scalars):
            return False
        arrays = (
            "run_start_addr",
            "run_stride_bytes",
            "run_length",
            "run_wb_next",
            "run_wb_window",
            "run_primer_age",
            "run_kind",
            "run_byte_uniform",
            "run_gaps_ge",
            "run_conc_ge",
        )
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in arrays
        )


@dataclass
class _Run:
    """Mutable per-run state while a pass is walking the trace."""

    start_addr: int
    stride_bytes: int
    stride_blocks: int
    length: int
    kind: int
    primer_age: int
    expected_block: int
    lone_mark: int
    last_addr: int = 0
    last_elem_pos: int = -1
    byte_uniform: bool = True
    open: bool = True
    wb_next: int = 0
    wb_window: int = 0
    gaps_ge: List[int] = field(default_factory=lambda: [0] * GAP_PRESSURE_BINS)
    conc_ge: List[int] = field(default_factory=lambda: [0] * GAP_PRESSURE_BINS)


def _finish(
    miss_trace: MissTrace,
    runs: List[_Run],
    demand_misses: int,
    writebacks: int,
    ifetch_misses: int,
    lone_misses: int,
    seed_events: int,
    alloc_events: int,
) -> MissSpectrum:
    n = len(runs)
    gaps = np.zeros((n, GAP_PRESSURE_BINS), dtype=np.int64)
    conc = np.zeros((n, GAP_PRESSURE_BINS), dtype=np.int64)
    for i, run in enumerate(runs):
        gaps[i, :] = run.gaps_ge
        conc[i, :] = run.conc_ge
    return MissSpectrum(
        block_bits=miss_trace.block_bits,
        n_events=int(len(miss_trace.addrs)),
        demand_misses=demand_misses,
        writebacks=writebacks,
        ifetch_misses=ifetch_misses,
        lone_misses=lone_misses,
        seed_events=seed_events,
        alloc_events=alloc_events,
        run_start_addr=np.array([r.start_addr for r in runs], dtype=np.int64),
        run_stride_bytes=np.array([r.stride_bytes for r in runs], dtype=np.int64),
        run_length=np.array([r.length for r in runs], dtype=np.int64),
        run_wb_next=np.array([r.wb_next for r in runs], dtype=np.int64),
        run_wb_window=np.array([r.wb_window for r in runs], dtype=np.int64),
        run_primer_age=np.array([r.primer_age for r in runs], dtype=np.int64),
        run_kind=np.array([r.kind for r in runs], dtype=np.uint8),
        run_byte_uniform=np.array(
            [1 if r.byte_uniform else 0 for r in runs], dtype=np.uint8
        ),
        run_gaps_ge=gaps,
        run_conc_ge=conc,
    )


def extract_spectrum(miss_trace: MissTrace) -> MissSpectrum:
    """One-pass run-length/stride spectrum of a miss trace.

    The decomposition rules are the module docstring's; the differ stage
    holds this implementation bit-identical to :func:`naive_spectrum`.
    """
    bb = miss_trace.block_bits
    block_bytes = 1 << bb
    wb_kind = int(MissEventKind.WRITEBACK)
    ifetch_kind = int(MissEventKind.IFETCH_MISS)

    expect: Dict[int, _Run] = {}
    # lone-miss block -> (addr, alloc mark at insertion), newest last.
    recent: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
    # partition tag -> (last addr, last delta or None).
    zones: Dict[int, Tuple[int, Optional[int]]] = {}
    # run id -> event position of its most recent tracked element; the
    # insertion order is the position order, so a reverse walk yields
    # the runs most recently active first (concurrency counting).
    active: "OrderedDict[int, int]" = OrderedDict()
    runs: List[_Run] = []

    demand_misses = writebacks = ifetch_misses = 0
    lone_misses = seed_events = alloc_events = 0

    def open_run(
        start_addr: int,
        stride_bytes: int,
        stride_blocks: int,
        length: int,
        kind: int,
        primer_age: int,
        next_block: int,
        seed_addr: int,
        byte_uniform: bool,
        pos: int,
    ) -> None:
        nonlocal seed_events, alloc_events
        seed_events += 1
        alloc_events += 1
        run = _Run(
            start_addr=start_addr,
            stride_bytes=stride_bytes,
            stride_blocks=stride_blocks,
            length=length,
            kind=kind,
            primer_age=primer_age,
            expected_block=next_block,
            lone_mark=lone_misses,
            last_addr=seed_addr,
            last_elem_pos=pos,
            byte_uniform=byte_uniform,
        )
        runs.append(run)
        active[id(run)] = pos
        if next_block in expect:
            run.open = False  # expectation collision: the incumbent keeps it
        else:
            expect[next_block] = run

    for pos, (addr, kind) in enumerate(
        zip(miss_trace.addrs.tolist(), miss_trace.kinds.tolist())
    ):
        block = addr >> bb
        if kind == wb_kind:
            writebacks += 1
            for run in expect.values():
                offset = block - run.expected_block
                stride = run.stride_blocks
                if offset == 0:
                    run.wb_next += 1
                    run.wb_window += 1
                elif stride != 0 and offset % stride == 0:
                    steps = offset // stride
                    if 0 < steps < WB_WINDOW_STRIDES:
                        run.wb_window += 1
            continue

        demand_misses += 1
        if kind == ifetch_kind:
            ifetch_misses += 1

        run = expect.pop(block, None)
        if run is not None:
            # Distinct other runs with a tracked element inside the gap:
            # the suffix of ``active`` later than this run's previous
            # element (the walk stops at the run's own entry).
            conc = 0
            for last_pos in reversed(active.values()):
                if last_pos <= run.last_elem_pos:
                    break
                conc += 1
                if conc > GAP_PRESSURE_BINS:
                    break
            lone_gap = lone_misses - run.lone_mark
            for k in range(min(conc, GAP_PRESSURE_BINS)):
                run.conc_ge[k] += 1
            for k in range(min(lone_gap + conc, GAP_PRESSURE_BINS)):
                run.gaps_ge[k] += 1
            run.length += 1
            if addr - run.last_addr != run.stride_bytes:
                run.byte_uniform = False
            run.last_addr = addr
            run.lone_mark = lone_misses
            run.last_elem_pos = pos
            active.pop(id(run), None)
            active[id(run)] = pos
            next_block = block + run.stride_blocks
            if next_block in expect:
                run.open = False
            else:
                run.expected_block = next_block
                expect[next_block] = run
            continue

        if (block - 1) in recent:
            primer_addr, mark = recent.pop(block - 1)
            open_run(
                start_addr=primer_addr,
                stride_bytes=block_bytes,
                stride_blocks=1,
                length=2,
                kind=RUN_KIND_UNIT,
                primer_age=alloc_events - mark,
                next_block=block + 1,
                seed_addr=addr,
                byte_uniform=addr - primer_addr == block_bytes,
                pos=pos,
            )
            continue
        if (block + 1) in recent:
            primer_addr, mark = recent.pop(block + 1)
            open_run(
                start_addr=primer_addr,
                stride_bytes=-block_bytes,
                stride_blocks=-1,
                length=2,
                kind=RUN_KIND_UNIT,
                primer_age=alloc_events - mark,
                next_block=block - 1,
                seed_addr=addr,
                byte_uniform=addr - primer_addr == -block_bytes,
                pos=pos,
            )
            continue

        tag = addr >> SPECTRUM_ZONE_BITS
        entry = zones.get(tag)
        if entry is not None:
            last_addr, last_delta = entry
            delta = addr - last_addr
            stride_blocks = block_stride(delta, bb)
            if last_delta is not None and delta == last_delta and stride_blocks != 0:
                del zones[tag]
                open_run(
                    start_addr=addr - 2 * delta,
                    stride_bytes=delta,
                    stride_blocks=stride_blocks,
                    length=3,
                    kind=RUN_KIND_ZONE,
                    primer_age=0,
                    next_block=block + stride_blocks,
                    seed_addr=addr,
                    byte_uniform=True,
                    pos=pos,
                )
                continue
            zones[tag] = (addr, delta)
        else:
            zones[tag] = (addr, None)

        # Lone miss: pressure, then into the recency window (refreshed).
        lone_misses += 1
        alloc_events += 1
        recent.pop(block, None)
        recent[block] = (addr, alloc_events)
        while len(recent) > SPECTRUM_WINDOW:
            recent.popitem(last=False)

    return _finish(
        miss_trace,
        runs,
        demand_misses,
        writebacks,
        ifetch_misses,
        lone_misses,
        seed_events,
        alloc_events,
    )


def naive_spectrum(miss_trace: MissTrace) -> MissSpectrum:
    """O(n^2) reference extraction with the same declared semantics.

    Shares no state-keeping tricks with :func:`extract_spectrum`: open
    runs, the recency window and the partition table are flat lists
    searched linearly, and the gap/primer pressure statistics are
    recounted after the walk from a per-event allocation log rather than
    carried incrementally.  The ``analytic-streams`` differ stage holds
    the two bit-identical on every corpus seed.
    """
    bb = miss_trace.block_bits
    block_bytes = 1 << bb
    wb_kind = int(MissEventKind.WRITEBACK)
    ifetch_kind = int(MissEventKind.IFETCH_MISS)

    addrs = miss_trace.addrs.tolist()
    kinds = miss_trace.kinds.tolist()
    n = len(addrs)
    alloc_flag = [False] * n  # event positions that allocate (lone or seed)
    lone_flag = [False] * n  # event positions that are lone misses

    class NaiveRun:
        def __init__(self, start_addr, stride_bytes, kind, primer_pos, positions):
            self.start_addr = start_addr
            self.stride_bytes = stride_bytes
            self.stride_blocks = block_stride(stride_bytes, bb)
            self.kind = kind
            self.primer_pos = primer_pos  # window primer position, or None
            self.positions = positions  # demand-event indices, in order
            self.seed_extra = 0  # training elements before the seed (zone: 2)
            self.open = True
            self.wb_next = 0
            self.wb_window = 0
            self._expected = 0  # next expected block while open

    runs: List[NaiveRun] = []
    window: List[Tuple[int, int, int]] = []  # (block, addr, position), oldest first
    zone_rows: List[List[object]] = []  # [tag, last_addr, last_delta]

    demand_misses = writebacks = ifetch_misses = 0
    lone_misses = seed_events = 0

    def find_open(block: int) -> Optional[NaiveRun]:
        for run in runs:
            if run.open and run._expected == block:
                return run
        return None

    for pos in range(n):
        addr, kind = addrs[pos], kinds[pos]
        block = addr >> bb
        if kind == wb_kind:
            writebacks += 1
            for run in runs:
                if not run.open:
                    continue
                offset = block - run._expected
                stride = run.stride_blocks
                if offset == 0:
                    run.wb_next += 1
                    run.wb_window += 1
                elif stride != 0 and offset % stride == 0:
                    steps = offset // stride
                    if 0 < steps < WB_WINDOW_STRIDES:
                        run.wb_window += 1
            continue

        demand_misses += 1
        if kind == ifetch_kind:
            ifetch_misses += 1

        run = find_open(block)
        if run is not None:
            run.positions.append(pos)
            next_block = block + run.stride_blocks
            if find_open(next_block) is not None:
                run.open = False
            else:
                run._expected = next_block
            continue

        primer = None
        stride_sign = 0
        for i in range(len(window) - 1, -1, -1):
            if window[i][0] == block - 1:
                primer, stride_sign = window[i], 1
                break
        if primer is None:
            for i in range(len(window) - 1, -1, -1):
                if window[i][0] == block + 1:
                    primer, stride_sign = window[i], -1
                    break
        if primer is not None:
            window.remove(primer)
            seed_events += 1
            alloc_flag[pos] = True
            new = NaiveRun(
                start_addr=primer[1],
                stride_bytes=stride_sign * block_bytes,
                kind=RUN_KIND_UNIT,
                primer_pos=primer[2],
                positions=[primer[2], pos],
            )
            new._expected = block + stride_sign
            if find_open(new._expected) is not None:
                new.open = False  # incumbent keeps the expectation
            runs.append(new)
            continue

        tag = addr >> SPECTRUM_ZONE_BITS
        row = None
        for candidate in zone_rows:
            if candidate[0] == tag:
                row = candidate
                break
        seeded = False
        if row is not None:
            last_addr, last_delta = row[1], row[2]
            delta = addr - last_addr
            stride_blocks = block_stride(delta, bb)
            if last_delta is not None and delta == last_delta and stride_blocks != 0:
                zone_rows.remove(row)
                seed_events += 1
                alloc_flag[pos] = True
                # The two training elements before the seed count toward
                # length but not toward gap statistics (gaps start at the
                # seeding element), so only the seed position is tracked.
                new = NaiveRun(
                    start_addr=addr - 2 * delta,
                    stride_bytes=delta,
                    kind=RUN_KIND_ZONE,
                    primer_pos=None,
                    positions=[pos],
                )
                new.seed_extra = 2
                new._expected = block + stride_blocks
                if find_open(new._expected) is not None:
                    new.open = False  # incumbent keeps the expectation
                runs.append(new)
                seeded = True
            else:
                row[1], row[2] = addr, delta
        else:
            zone_rows.append([tag, addr, None])
        if seeded:
            continue

        lone_misses += 1
        alloc_flag[pos] = True
        lone_flag[pos] = True
        for i, (wblock, _, _) in enumerate(window):
            if wblock == block:
                del window[i]
                break
        window.append((block, addr, pos))
        if len(window) > SPECTRUM_WINDOW:
            del window[0]

    alloc_events = sum(1 for flag in alloc_flag if flag)

    def tracked_positions(run: NaiveRun) -> List[int]:
        """Element positions that count for gap/concurrency statistics:
        the seeding element onward (a unit run's primer was a lone miss
        when it happened; a zone run's two training elements likewise)."""
        if run.kind == RUN_KIND_UNIT:
            return run.positions[1:]
        return run.positions

    # Recount gap pressure, concurrency and primer age from flat logs.
    out_runs: List[_Run] = []
    for run in runs:
        if run.kind == RUN_KIND_UNIT:
            length = len(run.positions)
            tracked = run.positions[1:]  # gaps start at the seeding element
            seed_pos = run.positions[1]
            primer_age = sum(
                1 for p in range(run.primer_pos + 1, seed_pos) if alloc_flag[p]
            )
            element_positions = run.positions  # primer included
        else:
            length = run.seed_extra + len(run.positions)
            tracked = run.positions  # first tracked element is the seeder
            primer_age = 0
            # The two pre-seed training deltas are equal by construction.
            element_positions = run.positions
        byte_uniform = all(
            addrs[right] - addrs[left] == run.stride_bytes
            for left, right in zip(element_positions, element_positions[1:])
        )
        gaps_ge = [0] * GAP_PRESSURE_BINS
        conc_ge = [0] * GAP_PRESSURE_BINS
        for left, right in zip(tracked, tracked[1:]):
            lone_gap = sum(1 for p in range(left + 1, right) if lone_flag[p])
            conc = sum(
                1
                for other in runs
                if other is not run
                and any(left < p < right for p in tracked_positions(other))
            )
            for k in range(min(conc, GAP_PRESSURE_BINS)):
                conc_ge[k] += 1
            for k in range(min(lone_gap + conc, GAP_PRESSURE_BINS)):
                gaps_ge[k] += 1
        record = _Run(
            start_addr=run.start_addr,
            stride_bytes=run.stride_bytes,
            stride_blocks=run.stride_blocks,
            length=length,
            kind=run.kind,
            primer_age=primer_age,
            expected_block=0,
            lone_mark=0,
            byte_uniform=byte_uniform,
        )
        record.wb_next = run.wb_next
        record.wb_window = run.wb_window
        record.gaps_ge = gaps_ge
        record.conc_ge = conc_ge
        out_runs.append(record)

    # alloc_events counted seeds + lones, same as the fast pass.
    return _finish(
        miss_trace,
        out_runs,
        demand_misses,
        writebacks,
        ifetch_misses,
        lone_misses,
        seed_events,
        alloc_events,
    )
