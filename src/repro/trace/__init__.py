"""Trace substrate: events, combinators, sampling, compression and I/O."""

from repro.trace.builder import TraceBuilder
from repro.trace.compress import CompressedTrace, compress_consecutive
from repro.trace.events import Access, AccessKind, Trace
from repro.trace.io import dump_text, load_trace, parse_text, save_trace
from repro.trace.sampling import TimeSampler, time_sample
from repro.trace.stats import (
    TraceProfile,
    block_run_lengths,
    profile_trace,
    stride_histogram,
)
from repro.trace.store import (
    RESULT_FORMAT_VERSION,
    STORE_FORMAT_VERSION,
    TraceStore,
    result_digest,
    trace_digest,
)
from repro.trace.stream import blocked_interleave, interleave, repeat, take

__all__ = [
    "Access",
    "AccessKind",
    "CompressedTrace",
    "RESULT_FORMAT_VERSION",
    "STORE_FORMAT_VERSION",
    "TimeSampler",
    "Trace",
    "TraceBuilder",
    "TraceProfile",
    "TraceStore",
    "block_run_lengths",
    "blocked_interleave",
    "compress_consecutive",
    "dump_text",
    "interleave",
    "load_trace",
    "parse_text",
    "profile_trace",
    "repeat",
    "result_digest",
    "save_trace",
    "stride_histogram",
    "take",
    "time_sample",
    "trace_digest",
]
