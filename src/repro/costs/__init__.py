"""Cost extension: the paper's SRAM-vs-bandwidth economics."""

from repro.costs.model import (
    CostModel,
    SystemCost,
    bandwidth_affordable,
    l2_design_cost,
    stream_design_cost,
)

__all__ = [
    "CostModel",
    "SystemCost",
    "bandwidth_affordable",
    "l2_design_cost",
    "stream_design_cost",
]
