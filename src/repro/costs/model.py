"""The paper's economic argument, as a model.

Section 1 motivates the whole study with system cost: "Gigabytes of
SRAM are required to implement the conventional workstation memory
system design for each processor in these [1K-processor] systems; this
is an exorbitant cost if the caches are not being effectively used",
and the conclusion proposes spending the SRAM savings on main-memory
bandwidth instead.

This module prices both designs per processor:

* **Conventional**: an SRAM secondary cache of a given capacity plus
  baseline memory bandwidth.
* **Stream-based**: the stream buffers' tiny SRAM/logic plus however
  much extra bandwidth the budget difference buys.

Costs are parameterised in abstract *units* (1 unit = the baseline
per-processor memory system) so the comparison is about ratios, as the
paper's argument is.  Combined with the timing extension this answers:
at equal cost, which design is faster?  (``examples/cost_study.py`` and
``bench_costs.py`` do exactly that.)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "SystemCost", "l2_design_cost", "stream_design_cost", "bandwidth_affordable"]


@dataclass(frozen=True)
class CostModel:
    """Relative component costs.

    Attributes:
        sram_cost_per_mb: cost units per MB of secondary-cache SRAM
            (includes tags/control amortised).
        baseline_memory_cost: cost units of the baseline-bandwidth
            memory system (1x bandwidth).
        bandwidth_cost_per_x: cost units per extra 1x of memory
            bandwidth (interleaving, wider paths, faster parts).
        stream_buffer_cost: cost units of the whole stream-buffer unit
            (the paper: "very little logic" — ten comparators/adders and
            ~1.3KB of SRAM).
    """

    sram_cost_per_mb: float = 1.0
    baseline_memory_cost: float = 1.0
    bandwidth_cost_per_x: float = 0.5
    stream_buffer_cost: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "sram_cost_per_mb",
            "baseline_memory_cost",
            "bandwidth_cost_per_x",
            "stream_buffer_cost",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class SystemCost:
    """A per-processor memory-system bill of materials."""

    sram_mb: float
    bandwidth_x: float
    total: float

    def scaled(self, processors: int) -> "SystemCost":
        """The bill for a parallel machine of ``processors`` nodes."""
        if processors <= 0:
            raise ValueError(f"processors must be positive, got {processors}")
        return SystemCost(
            sram_mb=self.sram_mb * processors,
            bandwidth_x=self.bandwidth_x,
            total=self.total * processors,
        )


def l2_design_cost(l2_mb: float, model: CostModel = CostModel()) -> SystemCost:
    """Cost of the conventional design: L2 SRAM + 1x-bandwidth memory."""
    if l2_mb < 0:
        raise ValueError(f"l2_mb must be non-negative, got {l2_mb}")
    total = l2_mb * model.sram_cost_per_mb + model.baseline_memory_cost
    return SystemCost(sram_mb=l2_mb, bandwidth_x=1.0, total=total)


def stream_design_cost(bandwidth_x: float, model: CostModel = CostModel()) -> SystemCost:
    """Cost of the stream design at ``bandwidth_x`` memory bandwidth."""
    if bandwidth_x < 1.0:
        raise ValueError(f"bandwidth_x must be >= 1, got {bandwidth_x}")
    total = (
        model.stream_buffer_cost
        + model.baseline_memory_cost
        + (bandwidth_x - 1.0) * model.bandwidth_cost_per_x
    )
    return SystemCost(sram_mb=0.0, bandwidth_x=bandwidth_x, total=total)


def bandwidth_affordable(l2_mb: float, model: CostModel = CostModel()) -> float:
    """Bandwidth the stream design can buy at the L2 design's price.

    The heart of the paper's conclusion: drop an ``l2_mb`` secondary
    cache, keep the budget constant, return the bandwidth multiplier
    the savings purchase (at least 1.0).
    """
    budget = l2_design_cost(l2_mb, model).total
    spare = budget - model.stream_buffer_cost - model.baseline_memory_cost
    if spare <= 0:
        return 1.0
    return 1.0 + spare / model.bandwidth_cost_per_x
