"""Stack-distance (reuse-distance) analysis.

Mattson's classic result: for fully-associative LRU, one pass over the
trace yields the miss count of *every* cache size simultaneously — an
access hits in a cache of C blocks iff fewer than C distinct blocks
were touched since its previous access (its *stack distance*).  This is
the analytic backbone of the Table 4 capacity story: the stack-distance
histogram of a workload's miss stream tells you how big a secondary
cache must be before temporal reuse appears, with no per-size
simulation.

The implementation is the standard O(n log n) Fenwick-tree algorithm.
Distances are measured in cache blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["StackProfile", "stack_distances", "profile_block_stream"]

_INFINITE = -1  # histogram key for cold (first-touch) accesses


class _Fenwick:
    """Fenwick tree over access positions (1-based)."""

    def __init__(self, n: int):
        self._tree = [0] * (n + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of positions [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


@dataclass(frozen=True)
class StackProfile:
    """Stack-distance histogram of a block-address stream.

    Attributes:
        histogram: stack distance -> access count; key ``-1`` collects
            cold (first-touch) accesses, whose distance is infinite.
        length: total accesses profiled.
    """

    histogram: Dict[int, int]
    length: int

    @property
    def cold_accesses(self) -> int:
        return self.histogram.get(_INFINITE, 0)

    def misses_at(self, capacity_blocks: int) -> int:
        """Exact fully-associative LRU misses for a cache of that size.

        Raises:
            ValueError: for non-positive capacities.
        """
        if capacity_blocks <= 0:
            raise ValueError(f"capacity_blocks must be positive, got {capacity_blocks}")
        return self.cold_accesses + sum(
            count
            for distance, count in self.histogram.items()
            if distance != _INFINITE and distance >= capacity_blocks
        )

    def miss_curve(self, capacities: Sequence[int]) -> Dict[int, float]:
        """Miss *rate* at each capacity (blocks)."""
        if not self.length:
            return {capacity: 0.0 for capacity in capacities}
        return {
            capacity: self.misses_at(capacity) / self.length for capacity in capacities
        }

    def reuse_fraction_within(self, capacity_blocks: int) -> float:
        """Fraction of accesses whose reuse fits in ``capacity_blocks``."""
        if not self.length:
            return 0.0
        return 1.0 - self.misses_at(capacity_blocks) / self.length


def stack_distances(
    blocks: Sequence[int],
    count: Optional[Sequence[bool]] = None,
) -> StackProfile:
    """Compute the stack-distance histogram of a block-address stream.

    Args:
        blocks: block addresses in access order.
        count: optional per-access flags; every access updates recency,
            but only flagged accesses contribute to the histogram (used
            to model write-backs that install blocks without being
            demand references).

    Raises:
        ValueError: if ``count`` does not pair up with ``blocks``.
    """
    blocks = list(blocks)
    n = len(blocks)
    if count is not None and len(count) != n:
        raise ValueError(f"count length {len(count)} != blocks length {n}")
    tree = _Fenwick(n)
    last_position: Dict[int, int] = {}
    histogram: Dict[int, int] = {}
    counted = 0
    for position, block in enumerate(blocks):
        tally = count is None or count[position]
        previous = last_position.get(block)
        if previous is None:
            if tally:
                histogram[_INFINITE] = histogram.get(_INFINITE, 0) + 1
        else:
            # Distinct blocks touched strictly between the two accesses:
            # marked positions in (previous, position).
            if tally:
                distance = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
                histogram[distance] = histogram.get(distance, 0) + 1
            tree.add(previous, -1)
        if tally:
            counted += 1
        tree.add(position, +1)
        last_position[block] = position
    return StackProfile(histogram=histogram, length=counted)


def profile_block_stream(miss_trace, demand_only: bool = True) -> StackProfile:
    """Stack-distance profile of a cache's miss stream.

    Args:
        miss_trace: a :class:`~repro.caches.cache.MissTrace`.
        demand_only: when True (default) write-backs are dropped
            entirely; when False they update recency (they install
            blocks in the next level) but only demand accesses are
            counted in the histogram — matching an L2's local hit rate.
    """
    if demand_only:
        source = miss_trace.misses_only()
        blocks = (np.asarray(source.addrs) >> miss_trace.block_bits).tolist()
        return stack_distances(blocks)
    blocks = (np.asarray(miss_trace.addrs) >> miss_trace.block_bits).tolist()
    wb = 2  # MissEventKind.WRITEBACK
    count = (np.asarray(miss_trace.kinds) != wb).tolist()
    return stack_distances(blocks, count=count)
