"""Analytic layer: closed-form stream predictions from miss-stream structure."""

from repro.analysis.predict import (
    StreamPrediction,
    predict_no_filter,
    predict_with_filter,
)
from repro.analysis.runs import RunDecomposition, decompose_runs
from repro.analysis.stack import StackProfile, profile_block_stream, stack_distances

__all__ = [
    "RunDecomposition",
    "StackProfile",
    "StreamPrediction",
    "decompose_runs",
    "predict_no_filter",
    "predict_with_filter",
    "profile_block_stream",
    "stack_distances",
]
