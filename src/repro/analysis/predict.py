"""Closed-form stream-buffer predictions from run structure.

Given the run-length decomposition of a miss stream, idealised
(enough-buffers) stream behaviour follows arithmetically:

* **No filter** (Section 5): a run of length L costs one allocation
  miss and then hits L-1 times, so

      hit_rate = sum (L-1) n_L / sum L n_L

  and every run's reallocation flushes up to ``depth`` prefetches:

      EB ~= depth x (number of runs) / (number of misses)

* **With the unit filter** (Section 6): two misses arm the filter
  before the stream exists, so a run contributes max(L-2, 0) hits, and
  only runs of length >= 2 allocate at all.

These are upper bounds (no stream-count pressure, no LRU churn, no
cross-run interference) and exact in the limit; comparing them with the
simulator both validates the simulator and quantifies how much of the
paper's results is pure trace structure.  ``bench_analysis.py`` does
the comparison for every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.runs import RunDecomposition

__all__ = ["StreamPrediction", "predict_no_filter", "predict_with_filter"]


@dataclass(frozen=True)
class StreamPrediction:
    """Analytic expectations for one configuration.

    Attributes:
        hit_rate: predicted stream hit rate (0..1).
        eb: predicted extra bandwidth (percent).
        allocations: predicted stream allocations.
    """

    hit_rate: float
    eb: float
    allocations: int

    @property
    def hit_rate_percent(self) -> float:
        return 100.0 * self.hit_rate


def predict_no_filter(runs: RunDecomposition, depth: int = 2) -> StreamPrediction:
    """Idealised Section 5 streams: allocate on every stream miss."""
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    misses = runs.total_misses
    if not misses:
        return StreamPrediction(hit_rate=0.0, eb=0.0, allocations=0)
    hits = sum((length - 1) * count for length, count in runs.histogram.items())
    allocations = runs.total_runs
    eb = 100.0 * depth * allocations / misses
    return StreamPrediction(hit_rate=hits / misses, eb=eb, allocations=allocations)


def predict_with_filter(runs: RunDecomposition, depth: int = 2) -> StreamPrediction:
    """Idealised Section 6 streams: the filter eats two misses per run
    and suppresses allocations for isolated references entirely."""
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    misses = runs.total_misses
    if not misses:
        return StreamPrediction(hit_rate=0.0, eb=0.0, allocations=0)
    hits = sum(
        max(length - 2, 0) * count for length, count in runs.histogram.items()
    )
    allocations = sum(
        count for length, count in runs.histogram.items() if length >= 2
    )
    eb = 100.0 * depth * allocations / misses
    return StreamPrediction(hit_rate=hits / misses, eb=eb, allocations=allocations)
