"""Interleaved-run decomposition of a miss stream.

Concurrent array walks interleave in the L1 miss stream, so consecutive
-block statistics understate its regularity.  This module demultiplexes
the stream the way an idealised (infinitely many buffers, associative)
stream engine would: an *open run* expects a specific next block; a
miss extends the run that expected it, or opens a new one.  The
resulting run-length histogram is the stream-relevant structure of the
trace, and drives the closed-form predictions in
:mod:`repro.analysis.predict`.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.caches.cache import MissTrace

__all__ = ["RunDecomposition", "decompose_runs"]


@dataclass(frozen=True)
class RunDecomposition:
    """Histogram of demultiplexed run lengths.

    Attributes:
        histogram: run length -> number of runs.
        total_misses: misses decomposed.
    """

    histogram: Dict[int, int]
    total_misses: int

    @property
    def total_runs(self) -> int:
        return sum(self.histogram.values())

    @property
    def mean_length(self) -> float:
        if not self.total_runs:
            return 0.0
        return self.total_misses / self.total_runs

    def misses_in_runs(self, predicate) -> float:
        """Fraction of misses inside runs whose length satisfies predicate."""
        if not self.total_misses:
            return 0.0
        selected = sum(
            length * count for length, count in self.histogram.items() if predicate(length)
        )
        return selected / self.total_misses


def decompose_runs(
    miss_trace: MissTrace,
    max_open: Optional[int] = None,
    stride_blocks: int = 1,
) -> RunDecomposition:
    """Demultiplex a miss stream into unit-stride (or strided) runs.

    Args:
        miss_trace: the L1's miss stream (write-backs are ignored).
        max_open: cap on simultaneously tracked runs (LRU closed beyond
            it); None tracks every run — the idealised engine.
        stride_blocks: run step in blocks (1 = consecutive blocks).

    Returns:
        The run-length decomposition.
    """
    if max_open is not None and max_open <= 0:
        raise ValueError(f"max_open must be positive, got {max_open}")
    if stride_blocks == 0:
        raise ValueError("stride_blocks must be non-zero")
    demand = miss_trace.misses_only()
    blocks = (demand.addrs >> miss_trace.block_bits).tolist()
    histogram: Counter = Counter()
    # expected next block -> current run length, LRU order.
    open_runs: "OrderedDict[int, int]" = OrderedDict()
    for block in blocks:
        length = open_runs.pop(block, None)
        if length is None:
            length = 0
        next_block = block + stride_blocks
        # Two runs can converge on the same expected block (e.g. the
        # same block missing twice after eviction); close the older one.
        displaced = open_runs.pop(next_block, None)
        if displaced is not None:
            histogram[displaced] += 1
        open_runs[next_block] = length + 1
        if max_open is not None and len(open_runs) > max_open:
            _, closed_length = open_runs.popitem(last=False)
            histogram[closed_length] += 1
    for length in open_runs.values():
        histogram[length] += 1
    return RunDecomposition(histogram=dict(histogram), total_misses=len(blocks))
