"""repro — a reproduction of Palacharla & Kessler, "Evaluating Stream
Buffers as a Secondary Cache Replacement" (ISCA 1994).

The package simulates the paper's memory system — an on-chip cache backed
only by Jouppi-style stream buffers and main memory — over synthetic
models of the paper's fifteen NAS/PERFECT benchmarks, and regenerates
every table and figure of its evaluation.

Quick start::

    from repro import StreamConfig, run_result

    result = run_result("mgrid", StreamConfig.filtered())
    print(result.hit_rate_percent, result.eb_percent)

Public layers:

* :mod:`repro.core` — stream buffers, allocation filters, stride detection
* :mod:`repro.caches` — L1/L2 cache simulators (the substrate)
* :mod:`repro.workloads` — benchmark models and microbenchmarks
* :mod:`repro.trace` — traces, sampling, compression
* :mod:`repro.sim` — runners, sweeps, the L2 comparison
* :mod:`repro.analytic` — stack-distance profiles and the screened search
* :mod:`repro.reporting` — the paper's tables and figures
"""

from repro.analytic import (
    LocalityProfile,
    min_matching_l2_size_analytic,
    profile_miss_trace,
)
from repro.baselines import (
    OneBlockLookahead,
    PrefetchingCache,
    ReferencePredictionTable,
)
from repro.caches import Cache, CacheConfig, MissTrace, SplitL1
from repro.core import (
    StreamBuffer,
    StreamBufferBank,
    StreamConfig,
    StreamPrefetcher,
    StreamStats,
    StrideDetector,
)
from repro.sim import (
    MemorySystem,
    RunResult,
    ServiceLevel,
    min_matching_l2_size,
    run_result,
    run_streams,
    sweep_czone_bits,
    sweep_n_streams,
)
from repro.timing import TimingModel, compare_designs
from repro.trace import Access, AccessKind, Trace, TraceBuilder
from repro.workloads import (
    PAPER_BENCHMARKS,
    Workload,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AccessKind",
    "Cache",
    "CacheConfig",
    "LocalityProfile",
    "MemorySystem",
    "MissTrace",
    "OneBlockLookahead",
    "PAPER_BENCHMARKS",
    "PrefetchingCache",
    "ReferencePredictionTable",
    "RunResult",
    "ServiceLevel",
    "SplitL1",
    "StreamBuffer",
    "StreamBufferBank",
    "StreamConfig",
    "StreamPrefetcher",
    "StreamStats",
    "StrideDetector",
    "TimingModel",
    "Trace",
    "TraceBuilder",
    "Workload",
    "__version__",
    "compare_designs",
    "get_workload",
    "min_matching_l2_size",
    "min_matching_l2_size_analytic",
    "profile_miss_trace",
    "run_result",
    "run_streams",
    "sweep_czone_bits",
    "sweep_n_streams",
    "workload_names",
]
