"""Timing extension: AMAT with bandwidth contention over the functional results."""

from repro.timing.model import TimingModel, TimingReport, evaluate_timing
from repro.timing.systems import (
    DesignComparison,
    compare_designs,
    l2_system_timing,
    stream_system_timing,
)

__all__ = [
    "DesignComparison",
    "TimingModel",
    "TimingReport",
    "compare_designs",
    "evaluate_timing",
    "l2_system_timing",
    "stream_system_timing",
]
