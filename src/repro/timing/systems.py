"""Timing evaluation of the two competing memory-system designs.

``stream_system_timing`` prices the paper's proposal (L1 + streams +
memory); ``l2_system_timing`` prices the conventional design (L1 + L2 +
memory) over the same L1 miss stream; ``design_comparison`` runs both
and reports the speedup — the number the paper's conclusion is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.caches.secondary import SecondaryResult
from repro.core.prefetcher import StreamStats
from repro.sim.results import L1Summary
from repro.timing.model import TimingModel, TimingReport, evaluate_timing

__all__ = ["stream_system_timing", "l2_system_timing", "DesignComparison", "compare_designs"]


def stream_system_timing(
    l1: L1Summary,
    streams: StreamStats,
    model: TimingModel = TimingModel(),
) -> TimingReport:
    """AMAT of the paper's design: L1 backed by streams and memory.

    Channel traffic: every demand miss moves one block (through a
    stream or the fast path — a stream hit's block was moved by its
    prefetch, counted under prefetches), every useless prefetch moves
    one, and every write-back moves one.
    """
    demand_fetches = streams.demand_misses - streams.prefetches_used
    traffic = demand_fetches + streams.prefetches_issued + l1.writebacks
    return evaluate_timing(
        references=l1.accesses,
        l1_hits=l1.accesses - streams.demand_misses,
        intermediate_hits=streams.stream_hits,
        memory_references=streams.demand_misses - streams.stream_hits,
        traffic_blocks=traffic,
        intermediate_cycles=model.stream_hit_cycles,
        model=model,
    )


def l2_system_timing(
    l1: L1Summary,
    l2: SecondaryResult,
    model: TimingModel = TimingModel(),
) -> TimingReport:
    """AMAT of the conventional design: L1 backed by an L2 and memory.

    Uses the L2's *local hit rate* (its simulation may have been
    set-sampled); traffic is the L2's misses plus write-back traffic.
    """
    demand = l1.misses
    l2_hits = int(round(demand * l2.local_hit_rate))
    l2_misses = demand - l2_hits
    traffic = l2_misses + l1.writebacks
    return evaluate_timing(
        references=l1.accesses,
        l1_hits=l1.accesses - demand,
        intermediate_hits=l2_hits,
        memory_references=l2_misses,
        traffic_blocks=traffic,
        intermediate_cycles=model.l2_hit_cycles,
        model=model,
    )


@dataclass(frozen=True)
class DesignComparison:
    """Stream-based vs L2-based design under one timing model.

    ``speedup`` > 1 means the stream design is faster.
    """

    stream: TimingReport
    l2: TimingReport

    @property
    def speedup(self) -> float:
        return self.l2.amat / self.stream.amat


def compare_designs(
    l1: L1Summary,
    streams: StreamStats,
    l2: SecondaryResult,
    model: TimingModel = TimingModel(),
) -> DesignComparison:
    """Price both designs over the same miss stream."""
    return DesignComparison(
        stream=stream_system_timing(l1, streams, model),
        l2=l2_system_timing(l1, l2, model),
    )
