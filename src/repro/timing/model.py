"""A simple timing model over the functional simulation results.

The paper deliberately reports hit rates, not time ("we did not want to
make this paper too specific to any particular memory system design"),
but its economic argument — replace the L2 with streams and spend the
savings on memory bandwidth — is a timing claim.  This module makes it
checkable: average memory access time (AMAT) with a first-order
bandwidth-contention term, for both a stream-based and an L2-based
memory system evaluated over the same L1 miss stream.

The contention model is a standard utilisation correction: the memory
channel is occupied ``block_transfer_cycles`` per block moved (demand
fetches, prefetches — useful or not — and write-backs); effective memory
latency scales by ``1 / (1 - U)`` with utilisation ``U``, solved by
fixed-point iteration since total time and utilisation are mutually
dependent.  It is a queueing approximation, not a pipeline simulator —
enough to rank designs, which is all the paper's argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimingModel", "TimingReport", "evaluate_timing"]


@dataclass(frozen=True)
class TimingModel:
    """Latency/bandwidth parameters (cycles).

    Defaults sketch a early-90s system in the spirit of the paper's
    Cray T3D example: ~60-cycle DRAM, a stream hit that needs only a
    comparator and a block transfer, an SRAM L2 at an intermediate
    latency.

    Attributes:
        l1_hit_cycles: on-chip hit time.
        stream_hit_cycles: stream-buffer hit service time (the paper
            argues this can beat an L2 hit: no RAM lookup).
        l2_hit_cycles: secondary-cache hit time.
        memory_cycles: uncontended main-memory latency.
        block_transfer_cycles: memory-channel occupancy per block moved
            (smaller = more plentiful bandwidth).
        max_utilisation: cap on modelled channel utilisation (the
            1/(1-U) correction diverges at 1.0).
    """

    l1_hit_cycles: float = 1.0
    stream_hit_cycles: float = 4.0
    l2_hit_cycles: float = 12.0
    memory_cycles: float = 60.0
    block_transfer_cycles: float = 4.0
    max_utilisation: float = 0.95

    def __post_init__(self) -> None:
        for field_name in (
            "l1_hit_cycles",
            "stream_hit_cycles",
            "l2_hit_cycles",
            "memory_cycles",
            "block_transfer_cycles",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if not 0.0 < self.max_utilisation < 1.0:
            raise ValueError("max_utilisation must be in (0, 1)")

    def with_bandwidth_factor(self, factor: float) -> "TimingModel":
        """A model whose memory channel is ``factor`` times wider."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return TimingModel(
            l1_hit_cycles=self.l1_hit_cycles,
            stream_hit_cycles=self.stream_hit_cycles,
            l2_hit_cycles=self.l2_hit_cycles,
            memory_cycles=self.memory_cycles,
            block_transfer_cycles=self.block_transfer_cycles / factor,
            max_utilisation=self.max_utilisation,
        )


@dataclass(frozen=True)
class TimingReport:
    """Outcome of evaluating one memory system under a timing model.

    Attributes:
        amat: average memory access time in cycles per reference.
        utilisation: modelled memory-channel utilisation (0..1).
        effective_memory_cycles: contention-inflated memory latency.
        traffic_blocks: total blocks moved on the channel.
        references: processor references evaluated.
    """

    amat: float
    utilisation: float
    effective_memory_cycles: float
    traffic_blocks: int
    references: int

    @property
    def total_cycles(self) -> float:
        """Memory-system cycles across the run (amat x references)."""
        return self.amat * self.references


def evaluate_timing(
    references: int,
    l1_hits: int,
    intermediate_hits: int,
    memory_references: int,
    traffic_blocks: int,
    intermediate_cycles: float,
    model: TimingModel,
    iterations: int = 12,
) -> TimingReport:
    """Fixed-point AMAT evaluation for a two-level-plus-memory system.

    Args:
        references: total processor references.
        l1_hits: references serviced on chip.
        intermediate_hits: references serviced by the middle level
            (stream buffers or L2).
        memory_references: references paying full memory latency.
        traffic_blocks: blocks moved on the memory channel (fetches +
            prefetches + write-backs).
        intermediate_cycles: service time of the middle level.
        model: latency/bandwidth parameters.

    Raises:
        ValueError: if the reference breakdown is inconsistent.
    """
    if references <= 0:
        raise ValueError("references must be positive")
    if l1_hits + intermediate_hits + memory_references != references:
        raise ValueError(
            "reference breakdown must sum to total references: "
            f"{l1_hits} + {intermediate_hits} + {memory_references} != {references}"
        )
    effective_memory = model.memory_cycles
    utilisation = 0.0
    amat = model.l1_hit_cycles
    for _ in range(iterations):
        amat = (
            l1_hits * model.l1_hit_cycles
            + intermediate_hits * intermediate_cycles
            + memory_references * effective_memory
        ) / references
        total_cycles = max(amat * references, 1e-9)
        utilisation = min(
            model.max_utilisation,
            traffic_blocks * model.block_transfer_cycles / total_cycles,
        )
        effective_memory = model.memory_cycles / (1.0 - utilisation)
    return TimingReport(
        amat=amat,
        utilisation=utilisation,
        effective_memory_cycles=effective_memory,
        traffic_blocks=traffic_blocks,
        references=references,
    )
