"""Prefetch baselines from the paper's related work (Section 2)."""

from repro.baselines.base import BaselineStats, PrefetchBaseline
from repro.baselines.obl import OneBlockLookahead
from repro.baselines.prefetch_cache import PrefetchingCache
from repro.baselines.rpt import ReferencePredictionTable, RptState

__all__ = [
    "BaselineStats",
    "OneBlockLookahead",
    "PrefetchBaseline",
    "PrefetchingCache",
    "ReferencePredictionTable",
    "RptState",
]
