"""Baer & Chen's reference prediction table (Section 2's on-chip rival).

The RPT keeps one entry per load/store instruction (indexed by PC): the
last address it touched, its current stride guess and a two-bit-style
state machine (initial / transient / steady / no-prediction).  A steady
entry prefetches ``addr + stride`` ahead of the access.

The paper's argument for stream buffers is that the PC is *not
available* off-chip, so this scheme needs processor modification.  We
implement it with the synthetic PCs the workload kernels attach to
their loop columns, which makes this an *oracle* comparison: RPT gets
exactly the per-instruction information the paper says commodity
systems cannot export.  Phases built without ``loop()`` (block solves,
gathers) carry PC 0 and collapse into one entry — a fair reflection of
missing PC information.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass

from repro.baselines.base import PrefetchBaseline

__all__ = ["RptState", "ReferencePredictionTable"]


class RptState(enum.Enum):
    """Baer & Chen's per-entry states."""

    INITIAL = "initial"
    TRANSIENT = "transient"
    STEADY = "steady"
    NO_PRED = "no-pred"


@dataclass
class _Entry:
    last_addr: int
    stride: int = 0
    state: RptState = RptState.INITIAL


class ReferencePredictionTable(PrefetchBaseline):
    """PC-indexed stride prefetcher with a prefetched-block buffer.

    Args:
        table_entries: RPT capacity (instructions tracked), LRU.
        buffer_entries: prefetched-block buffer capacity.
        block_bits: cache-block geometry.
    """

    name = "rpt"

    def __init__(
        self,
        table_entries: int = 64,
        buffer_entries: int = 32,
        block_bits: int = 6,
    ):
        super().__init__(block_bits=block_bits)
        if table_entries <= 0 or buffer_entries <= 0:
            raise ValueError("table_entries and buffer_entries must be positive")
        self.table_entries = table_entries
        self.buffer_entries = buffer_entries
        self._table: "OrderedDict[int, _Entry]" = OrderedDict()
        self._buffer: "OrderedDict[int, None]" = OrderedDict()

    # -- prefetch buffer ----------------------------------------------------

    def _prefetch(self, block: int) -> None:
        if block in self._buffer:
            self._buffer.move_to_end(block)
            return
        self.stats.prefetches_issued += 1
        self._buffer[block] = None
        if len(self._buffer) > self.buffer_entries:
            self._buffer.popitem(last=False)

    # -- RPT state machine ----------------------------------------------------

    def _update_entry(self, entry: _Entry, addr: int) -> bool:
        """Advance the B&C state machine; return True if prediction holds."""
        delta = addr - entry.last_addr
        correct = delta == entry.stride and delta != 0
        if entry.state is RptState.INITIAL:
            entry.state = RptState.TRANSIENT if not correct else RptState.STEADY
            entry.stride = delta
        elif entry.state is RptState.TRANSIENT:
            if correct:
                entry.state = RptState.STEADY
            else:
                entry.stride = delta
                entry.state = RptState.NO_PRED
        elif entry.state is RptState.STEADY:
            if not correct:
                entry.state = RptState.INITIAL
        else:  # NO_PRED
            if correct:
                entry.state = RptState.TRANSIENT
            else:
                entry.stride = delta
        entry.last_addr = addr
        return entry.state is RptState.STEADY

    def handle_miss(self, addr: int, pc: int = 0) -> bool:
        block = addr >> self.block_bits
        hit = block in self._buffer
        if hit:
            del self._buffer[block]
            self.stats.prefetches_used += 1

        entry = self._table.get(pc)
        if entry is None:
            entry = _Entry(last_addr=addr)
            self._table[pc] = entry
            if len(self._table) > self.table_entries:
                self._table.popitem(last=False)
        else:
            self._table.move_to_end(pc)
            if self._update_entry(entry, addr):
                target = addr + entry.stride
                target_block = target >> self.block_bits
                if target_block != block:
                    self._prefetch(target_block)
        return hit

    def handle_writeback(self, addr: int) -> None:
        block = addr >> self.block_bits
        if block in self._buffer:
            del self._buffer[block]
            self.stats.invalidations += 1

    def entry_state(self, pc: int) -> RptState:
        """State of the entry for ``pc`` (NO_PRED if absent); for tests."""
        entry = self._table.get(pc)
        return entry.state if entry is not None else RptState.NO_PRED
