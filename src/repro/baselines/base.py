"""Common machinery for prefetch baselines.

The paper's related work surveys the alternatives to stream buffers:
Smith's one-block-lookahead, the Rambus small prefetching cache, and
Baer & Chen's PC-indexed reference prediction table.  Each baseline here
sits in the stream buffers' position — between the primary cache and
main memory, observing the L1 miss stream — and reports the same metrics
(hit rate over demand misses, extra bandwidth), so the comparison bench
can rank them against `StreamPrefetcher` directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.caches.cache import MissEventKind, MissTrace
from repro.core.bandwidth import BandwidthReport

__all__ = ["BaselineStats", "PrefetchBaseline"]


@dataclass
class BaselineStats:
    """Counters shared by every baseline (mirrors ``StreamStats``)."""

    name: str
    demand_misses: int = 0
    hits: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        if not self.demand_misses:
            return 0.0
        return self.hits / self.demand_misses

    @property
    def hit_rate_percent(self) -> float:
        return 100.0 * self.hit_rate

    @property
    def bandwidth(self) -> BandwidthReport:
        return BandwidthReport(
            prefetches_issued=self.prefetches_issued,
            prefetches_used=self.prefetches_used,
            l1_misses=self.demand_misses,
            allocations=0,
            depth=1,
        )


class PrefetchBaseline(abc.ABC):
    """A prefetcher sitting between the L1 and main memory."""

    name: str = "baseline"

    def __init__(self, block_bits: int = 6):
        self.block_bits = block_bits
        self.stats = BaselineStats(name=self.name)

    @abc.abstractmethod
    def handle_miss(self, addr: int, pc: int = 0) -> bool:
        """One demand miss; returns True if serviced from prefetched data."""

    def handle_writeback(self, addr: int) -> None:
        """A dirty block travelling to memory (default: ignore)."""

    def run(self, miss_trace: MissTrace) -> BaselineStats:
        """Consume a whole miss trace.

        Raises:
            ValueError: on block-geometry mismatch.
        """
        if miss_trace.block_bits != self.block_bits:
            raise ValueError(
                f"miss trace block_bits {miss_trace.block_bits} != "
                f"baseline block_bits {self.block_bits}"
            )
        wb_kind = int(MissEventKind.WRITEBACK)
        stats = self.stats
        for addr, kind, pc in zip(
            miss_trace.addrs.tolist(),
            miss_trace.kinds.tolist(),
            miss_trace.pcs_or_zeros().tolist(),
        ):
            if kind == wb_kind:
                stats.writebacks += 1
                self.handle_writeback(addr)
                continue
            stats.demand_misses += 1
            if self.handle_miss(addr, pc):
                stats.hits += 1
        return stats
