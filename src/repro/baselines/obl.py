"""One-block-lookahead prefetching (Smith, surveyed in Section 2).

The OBL policy prefetches block ``i+1`` whenever block ``i`` is
referenced.  Placed off-chip in the stream buffers' position, the
natural embodiment is a small fully-associative buffer of prefetched
blocks: every demand miss to block ``b`` triggers a prefetch of ``b+1``
into the buffer; a miss that finds its block already prefetched is an
OBL hit (and, under the *tagged* variant, chains a further prefetch).

Differences from a stream buffer: the buffer is associative (no
head-only restriction) but has no notion of a stream — one entry per
prefetch, LRU-replaced — so it cannot run ahead of the processor more
than one block per demand reference.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.baselines.base import PrefetchBaseline

__all__ = ["OneBlockLookahead"]


class OneBlockLookahead(PrefetchBaseline):
    """OBL with a fully-associative prefetched-block buffer.

    Args:
        entries: buffer capacity in blocks.
        tagged: Smith's tagged variant — a hit on a prefetched block
            triggers the next lookahead prefetch, letting sequential
            runs chain; untagged OBL only prefetches on demand misses.
        block_bits: cache-block geometry.
    """

    name = "obl"

    def __init__(self, entries: int = 16, tagged: bool = True, block_bits: int = 6):
        super().__init__(block_bits=block_bits)
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.entries = entries
        self.tagged = tagged
        self.name = "obl-tagged" if tagged else "obl"
        self.stats.name = self.name
        # prefetched block -> None, LRU order (oldest first).
        self._buffer: "OrderedDict[int, None]" = OrderedDict()

    def _prefetch(self, block: int) -> None:
        if block in self._buffer:
            self._buffer.move_to_end(block)
            return
        self.stats.prefetches_issued += 1
        self._buffer[block] = None
        if len(self._buffer) > self.entries:
            self._buffer.popitem(last=False)

    def handle_miss(self, addr: int, pc: int = 0) -> bool:
        block = addr >> self.block_bits
        hit = block in self._buffer
        if hit:
            del self._buffer[block]
            self.stats.prefetches_used += 1
            if self.tagged:
                self._prefetch(block + 1)
        else:
            self._prefetch(block + 1)
        return hit

    def handle_writeback(self, addr: int) -> None:
        block = addr >> self.block_bits
        if block in self._buffer:
            del self._buffer[block]
            self.stats.invalidations += 1

    def buffered_blocks(self):
        """Currently prefetched blocks, oldest first (for tests)."""
        return list(self._buffer)
