"""A small prefetching secondary cache (the Rambus design, Section 2).

Rambus proposed a ~1KB prefetching cache backed by high-bandwidth DRAM
as an alternative to a conventional 256KB secondary cache.  Model: a
fully-associative LRU cache of a few dozen blocks that, on every demand
miss, installs the missing block *and* prefetches the next sequential
block into itself.  Unlike stream buffers it retains demand-fetched
blocks (so it captures short-range temporal reuse the streams ignore),
but its single pool is shared between history and lookahead.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.baselines.base import PrefetchBaseline

__all__ = ["PrefetchingCache"]


class PrefetchingCache(PrefetchBaseline):
    """Fully-associative LRU block cache with one-block lookahead fill.

    Args:
        blocks: capacity in cache blocks (16 x 64B = the Rambus 1KB).
        lookahead: sequential blocks prefetched per miss.
    """

    name = "prefetch-cache"

    def __init__(self, blocks: int = 16, lookahead: int = 1, block_bits: int = 6):
        super().__init__(block_bits=block_bits)
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        if lookahead < 0:
            raise ValueError(f"lookahead must be non-negative, got {lookahead}")
        self.blocks = blocks
        self.lookahead = lookahead
        # block -> was_prefetched flag, LRU order (oldest first).
        self._cache: "OrderedDict[int, bool]" = OrderedDict()

    def _install(self, block: int, prefetched: bool) -> None:
        if block in self._cache:
            # Keep the strongest claim about bandwidth: once demanded,
            # a block is no longer speculative.
            self._cache[block] = self._cache[block] and prefetched
            self._cache.move_to_end(block)
            return
        if prefetched:
            self.stats.prefetches_issued += 1
        self._cache[block] = prefetched
        if len(self._cache) > self.blocks:
            self._cache.popitem(last=False)

    def handle_miss(self, addr: int, pc: int = 0) -> bool:
        block = addr >> self.block_bits
        hit = block in self._cache
        if hit:
            if self._cache[block]:
                self.stats.prefetches_used += 1
                self._cache[block] = False
            self._cache.move_to_end(block)
        else:
            self._install(block, prefetched=False)
        for ahead in range(1, self.lookahead + 1):
            self._install(block + ahead, prefetched=True)
        return hit

    def handle_writeback(self, addr: int) -> None:
        block = addr >> self.block_bits
        if block in self._cache:
            del self._cache[block]
            self.stats.invalidations += 1

    def cached_blocks(self):
        """Resident blocks, oldest first (for tests)."""
        return list(self._cache)
