"""Plain-text line charts for the paper's figures.

``render_series`` plots one or more (x -> y) series as an ASCII chart —
enough to see the saturation of Figure 3, the filter deltas of Figure 5
and the czone band of Figure 9 in a terminal or a benchmark log.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["render_series", "render_bars"]

_MARKS = "ox+*#@%&abcdefgh"


def render_series(
    series: Dict[str, Dict[float, float]],
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
    y_max: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Plot several named series sharing an x-axis.

    Args:
        series: label -> {x: y}.  All x values are collected and sorted
            into discrete columns.
        height: chart rows.
        y_max: fixed y ceiling (auto from data when omitted).

    Raises:
        ValueError: if there is nothing to plot.
    """
    points = {
        label: dict(sorted(data.items())) for label, data in series.items() if data
    }
    if not points:
        raise ValueError("render_series needs at least one non-empty series")
    xs: List[float] = sorted({x for data in points.values() for x in data})
    top = y_max if y_max is not None else max(y for d in points.values() for y in d.values())
    if top <= 0:
        top = 1.0
    grid = [[" "] * len(xs) for _ in range(height)]
    for index, (label, data) in enumerate(points.items()):
        mark = _MARKS[index % len(_MARKS)]
        for col, x in enumerate(xs):
            if x not in data:
                continue
            level = min(height - 1, int(round((data[x] / top) * (height - 1))))
            grid[height - 1 - level][col] = mark

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        level_value = top * (height - 1 - row_index) / (height - 1)
        axis = f"{level_value:7.1f} |" if row_index % 4 == 0 or row_index == height - 1 else "        |"
        lines.append(axis + " " + "  ".join(row))
    lines.append("        +" + "-" * (3 * len(xs)))
    x_cells = "  ".join(f"{x:g}"[:2].rjust(1) for x in xs)
    lines.append("          " + x_cells + ("   " + x_label if x_label else ""))
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]}={label}" for i, label in enumerate(points)
    )
    lines.append("  legend: " + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def render_bars(
    values: Dict[str, float],
    width: int = 50,
    unit: str = "%",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart (used for Figure 5/8 style comparisons)."""
    if not values:
        raise ValueError("render_bars needs at least one value")
    top = max(max(values.values()), 1e-9)
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, int(round(width * value / top)))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.1f}{unit}")
    return "\n".join(lines)
