"""One driver per table and figure of the paper's evaluation.

Each ``table*``/``figure*`` function runs the experiment and returns
structured data; the matching ``render_*`` function produces the
plain-text exhibit with the paper's published value beside every measured
one.  The benchmark harness under ``benchmarks/`` calls these and prints
the rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import StreamConfig
from repro.core.lengths import LENGTH_BUCKETS, bucket_label
from repro.mechanisms import MechanismConfig, mechanism_label
from repro.reporting import paper_data
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table
from repro.sim.compare import MatchResult, format_size, min_matching_l2_size
from repro.sim.runner import MissTraceCache, default_cache, run_streams
from repro.sim.sweep import sweep_czone_bits, sweep_n_streams
from repro.trace.store import TraceStore
from repro.workloads import (
    NON_UNIT_STRIDE_BENCHMARKS,
    PAPER_BENCHMARKS,
    TABLE4_SCALES,
)

__all__ = [
    "table1",
    "render_table1",
    "figure3",
    "render_figure3",
    "table2",
    "render_table2",
    "table3",
    "render_table3",
    "figure5",
    "render_figure5",
    "figure8",
    "render_figure8",
    "figure9",
    "render_figure9",
    "table4",
    "render_table4",
    "analytic4",
    "render_analytic4",
    "default_zoo",
    "mechzoo",
    "render_mechzoo",
]

#: The czone size used wherever the paper's non-unit stride filter is on
#: but Figure 9 is not being swept (a value inside every benchmark's
#: effective band).
DEFAULT_CZONE_BITS = 19


# -- Table 1 ----------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """Benchmark characteristics, measured vs paper."""

    name: str
    suite: str
    model_data_mb: float
    model_miss_rate_pct: float
    paper_data_mb: float
    paper_miss_rate_pct: float


def table1(
    names: Sequence[str] = PAPER_BENCHMARKS,
    cache: Optional[MissTraceCache] = None,
) -> List[Table1Row]:
    """Benchmark characteristics (model vs paper Table 1)."""
    cache = cache if cache is not None else default_cache()
    rows = []
    for name in names:
        _, summary = cache.get(name)
        suite, _input, data_mb, miss_pct, _mpi = paper_data.TABLE1[name]
        rows.append(
            Table1Row(
                name=name,
                suite=suite,
                model_data_mb=summary.data_set_bytes / (1 << 20),
                model_miss_rate_pct=100.0 * summary.miss_rate,
                paper_data_mb=data_mb,
                paper_miss_rate_pct=miss_pct,
            )
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 with paper values beside measured ones."""
    return render_table(
        ["bench", "suite", "data MB", "paper MB", "miss %", "paper miss %"],
        [
            [
                r.name,
                r.suite,
                r.model_data_mb,
                r.paper_data_mb,
                r.model_miss_rate_pct,
                r.paper_miss_rate_pct,
            ]
            for r in rows
        ],
        title="Table 1: benchmark characteristics (model vs paper)",
        precision=2,
    )


# -- Figure 3 ---------------------------------------------------------------


def figure3(
    names: Sequence[str] = PAPER_BENCHMARKS,
    n_values: Sequence[int] = tuple(range(1, 11)),
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional["TraceStore"] = None,
) -> Dict[str, Dict[int, float]]:
    """Hit rate vs number of streams (unfiltered, depth 2).

    ``jobs``/``store`` fan the per-benchmark sweeps out through the
    parallel engine and its persistent trace store (see repro.sim.parallel).
    """
    cache = cache if cache is not None else default_cache()
    data = {}
    for name in names:
        sweep = sweep_n_streams(name, n_values, cache=cache, jobs=jobs, store=store)
        data[name] = {n: stats.hit_rate_percent for n, stats in sweep.items()}
    return data


def render_figure3(data: Dict[str, Dict[int, float]]) -> str:
    """Render Figure 3 as an ASCII chart plus an endpoint table."""
    chart = render_series(
        {name: {float(n): hit for n, hit in series.items()} for name, series in data.items()},
        y_label="stream hit rate %",
        x_label="number of streams",
        y_max=100.0,
        title="Figure 3: hit rate vs number of streams",
    )
    rows = []
    for name, series in data.items():
        final = series[max(series)]
        rows.append([name, final, paper_data.FIGURE3_HIT_AT_10.get(name)])
    table = render_table(
        ["bench", "hit % @ max streams", "paper ~%"],
        rows,
        title="Figure 3 endpoints (ten streams)",
    )
    return chart + "\n\n" + table


# -- Table 2 ----------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    name: str
    eb_measured_pct: float
    eb_estimate_pct: float
    paper_eb_pct: Optional[int]


def table2(
    names: Sequence[str] = PAPER_BENCHMARKS,
    n_streams: int = 10,
    cache: Optional[MissTraceCache] = None,
) -> List[Table2Row]:
    """Extra bandwidth of ordinary (unfiltered) streams."""
    cache = cache if cache is not None else default_cache()
    rows = []
    for name in names:
        stats = run_streams(name, StreamConfig.jouppi(n_streams=n_streams), cache=cache)
        rows.append(
            Table2Row(
                name=name,
                eb_measured_pct=stats.bandwidth.eb_measured,
                eb_estimate_pct=stats.bandwidth.eb_estimate,
                paper_eb_pct=paper_data.TABLE2_EB.get(name),
            )
        )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    """Render Table 2 (measured and closed-form EB vs paper)."""
    return render_table(
        ["bench", "EB % (measured)", "EB % (S*D/M)", "paper EB %"],
        [[r.name, r.eb_measured_pct, r.eb_estimate_pct, r.paper_eb_pct] for r in rows],
        title="Table 2: extra bandwidth of ordinary streams",
    )


# -- Table 3 ----------------------------------------------------------------


def table3(
    names: Sequence[str] = PAPER_BENCHMARKS,
    n_streams: int = 10,
    cache: Optional[MissTraceCache] = None,
) -> Dict[str, List[float]]:
    """Stream length distribution (% hits per bucket), ten streams."""
    cache = cache if cache is not None else default_cache()
    data = {}
    for name in names:
        stats = run_streams(name, StreamConfig.jouppi(n_streams=n_streams), cache=cache)
        data[name] = stats.lengths.as_row()
    return data


def render_table3(data: Dict[str, List[float]]) -> str:
    """Render Table 3 with the paper's 1-5 / >20 endpoints."""
    headers = ["bench"] + [bucket_label(b) for b in LENGTH_BUCKETS] + [
        "paper 1-5",
        "paper >20",
    ]
    rows = []
    for name, buckets in data.items():
        short, long_ = paper_data.TABLE3_SHORT_LONG.get(name, (None, None))
        rows.append([name] + [round(v) for v in buckets] + [short, long_])
    return render_table(
        headers, rows, title="Table 3: distribution of stream lengths (% of hits)"
    )


# -- Figure 5 ---------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Row:
    name: str
    hit_no_filter: float
    hit_with_filter: float
    eb_no_filter: float
    eb_with_filter: float


def figure5(
    names: Sequence[str] = PAPER_BENCHMARKS,
    n_streams: int = 10,
    filter_entries: int = 16,
    cache: Optional[MissTraceCache] = None,
) -> List[Figure5Row]:
    """Hit rate and EB with vs without the unit-stride filter."""
    cache = cache if cache is not None else default_cache()
    rows = []
    for name in names:
        plain = run_streams(name, StreamConfig.jouppi(n_streams=n_streams), cache=cache)
        filtered = run_streams(
            name,
            StreamConfig.filtered(n_streams=n_streams, entries=filter_entries),
            cache=cache,
        )
        rows.append(
            Figure5Row(
                name=name,
                hit_no_filter=plain.hit_rate_percent,
                hit_with_filter=filtered.hit_rate_percent,
                eb_no_filter=plain.bandwidth.eb_measured,
                eb_with_filter=filtered.bandwidth.eb_measured,
            )
        )
    return rows


def render_figure5(rows: List[Figure5Row]) -> str:
    """Render the Figure 5 filter-effect table."""
    return render_table(
        ["bench", "hit %", "hit % w/ filter", "EB %", "EB % w/ filter"],
        [
            [r.name, r.hit_no_filter, r.hit_with_filter, r.eb_no_filter, r.eb_with_filter]
            for r in rows
        ],
        title="Figure 5: effect of the unit-stride filter (16 entries, 10 streams)",
    )


# -- Figure 8 ---------------------------------------------------------------


@dataclass(frozen=True)
class Figure8Row:
    name: str
    hit_unit_only: float
    hit_constant_stride: float
    paper_unit: Optional[float]
    paper_stride: Optional[float]


def figure8(
    names: Sequence[str] = PAPER_BENCHMARKS,
    n_streams: int = 10,
    czone_bits: int = DEFAULT_CZONE_BITS,
    cache: Optional[MissTraceCache] = None,
) -> List[Figure8Row]:
    """Unit-stride-only vs constant-stride-detecting streams (filtered)."""
    cache = cache if cache is not None else default_cache()
    rows = []
    for name in names:
        unit = run_streams(name, StreamConfig.filtered(n_streams=n_streams), cache=cache)
        stride = run_streams(
            name,
            StreamConfig.non_unit(n_streams=n_streams, czone_bits=czone_bits),
            cache=cache,
        )
        paper = paper_data.FIGURE8_GAINS.get(name)
        rows.append(
            Figure8Row(
                name=name,
                hit_unit_only=unit.hit_rate_percent,
                hit_constant_stride=stride.hit_rate_percent,
                paper_unit=paper[0] if paper else None,
                paper_stride=paper[1] if paper else None,
            )
        )
    return rows


def render_figure8(rows: List[Figure8Row]) -> str:
    """Render the Figure 8 stride-detection table."""
    return render_table(
        ["bench", "unit-only %", "const-stride %", "paper unit", "paper stride"],
        [
            [r.name, r.hit_unit_only, r.hit_constant_stride, r.paper_unit, r.paper_stride]
            for r in rows
        ],
        title="Figure 8: non-unit stride detection (10 streams, 16-entry filters)",
    )


# -- Figure 9 ---------------------------------------------------------------


def figure9(
    names: Sequence[str] = NON_UNIT_STRIDE_BENCHMARKS,
    czone_bits_values: Sequence[int] = tuple(range(10, 27, 2)),
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional["TraceStore"] = None,
) -> Dict[str, Dict[int, float]]:
    """Hit rate vs czone size for the non-unit stride benchmarks.

    ``jobs``/``store`` fan the per-benchmark sweeps out through the
    parallel engine and its persistent trace store (see repro.sim.parallel).
    """
    cache = cache if cache is not None else default_cache()
    data = {}
    for name in names:
        sweep = sweep_czone_bits(name, czone_bits_values, cache=cache, jobs=jobs, store=store)
        data[name] = {bits: stats.hit_rate_percent for bits, stats in sweep.items()}
    return data


def render_figure9(data: Dict[str, Dict[int, float]]) -> str:
    """Render Figure 9 as an ASCII chart plus a band summary."""
    chart = render_series(
        {name: {float(b): h for b, h in series.items()} for name, series in data.items()},
        y_label="stream hit rate %",
        x_label="czone bits",
        y_max=100.0,
        title="Figure 9: hit-rate sensitivity to czone size",
    )
    rows = []
    for name, series in data.items():
        best_bits = max(series, key=series.get)
        rows.append([name, best_bits, series[best_bits], min(series.values())])
    table = render_table(
        ["bench", "best czone bits", "best hit %", "worst hit %"],
        rows,
        title="Figure 9 summary",
    )
    return chart + "\n\n" + table


# -- Table 4 ----------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    name: str
    scale: float
    stream_hit_pct: float
    min_l2: str
    paper_input: Optional[str]
    paper_hit_pct: Optional[int]
    paper_min_l2: Optional[str]
    match: MatchResult


def table4(
    scales: Optional[Dict[str, Tuple[float, float]]] = None,
    cache: Optional[MissTraceCache] = None,
) -> List[Table4Row]:
    """Streams vs secondary caches across input scales."""
    scales = scales if scales is not None else TABLE4_SCALES
    cache = cache if cache is not None else default_cache()
    rows = []
    for name, pair in scales.items():
        paper_pair = paper_data.TABLE4.get(name)
        for index, scale in enumerate(pair):
            match = min_matching_l2_size(name, scale=scale, cache=cache)
            paper_cell = paper_pair[index] if paper_pair else None
            rows.append(
                Table4Row(
                    name=name,
                    scale=scale,
                    stream_hit_pct=match.stream_hit_rate_percent,
                    min_l2=format_size(match.matched_size),
                    paper_input=paper_cell[0] if paper_cell else None,
                    paper_hit_pct=paper_cell[1] if paper_cell else None,
                    paper_min_l2=paper_cell[2] if paper_cell else None,
                    match=match,
                )
            )
    return rows


def render_table4(rows: List[Table4Row]) -> str:
    """Render Table 4 (stream hit and min matching L2 vs paper)."""
    return render_table(
        ["bench", "scale", "stream hit %", "min L2", "paper hit %", "paper min L2"],
        [
            [r.name, r.scale, r.stream_hit_pct, r.min_l2, r.paper_hit_pct, r.paper_min_l2]
            for r in rows
        ],
        title="Table 4: stream buffers versus secondary cache across input scales",
        precision=2,
    )


# -- analytic Table 4 screen ------------------------------------------------


@dataclass(frozen=True)
class AnalyticScreenRow:
    """One (workload, scale) cell of the analytic-vs-simulated screen.

    Attributes:
        name / scale: the Table 4 cell.
        stream_hit_pct: stream hit rate being matched.
        min_l2_analytic: matched size from the analytic screen.
        min_l2_simulated: matched size from the pure binary search
            (``"-"`` when verification was skipped).
        configs_analytic / configs_simulated: L2 configurations each
            path simulated (out of ``grid_configs``).
        grid_configs: size of the full candidate grid.
        agree: both paths returned the same matched size.
    """

    name: str
    scale: float
    stream_hit_pct: float
    min_l2_analytic: str
    min_l2_simulated: str
    configs_analytic: int
    configs_simulated: int
    grid_configs: int
    agree: bool


def analytic4(
    names: Optional[Sequence[str]] = None,
    scales: Optional[Dict[str, Tuple[float, float]]] = None,
    cache: Optional[MissTraceCache] = None,
    verify: bool = True,
) -> List[AnalyticScreenRow]:
    """Table 4 via the analytic screen, cross-checked against simulation.

    Runs :func:`repro.analytic.screen.min_matching_l2_size_analytic` on
    every Table 4 cell and (by default) the pure-simulation search too,
    recording whether the matched sizes agree and how many of the
    candidate configurations each path actually simulated.
    """
    from repro.analytic import min_matching_l2_size_analytic
    from repro.caches.secondary import PAPER_L2_ASSOCS, PAPER_L2_BLOCKS, PAPER_L2_SIZES

    scales = scales if scales is not None else TABLE4_SCALES
    if names is not None:
        scales = {k: v for k, v in scales.items() if k in names}
    cache = cache if cache is not None else default_cache()
    grid = len(PAPER_L2_SIZES) * len(PAPER_L2_ASSOCS) * len(PAPER_L2_BLOCKS)
    rows = []
    for name, pair in scales.items():
        for scale in pair:
            analytic = min_matching_l2_size_analytic(name, scale=scale, cache=cache)
            if verify:
                simulated = min_matching_l2_size(name, scale=scale, cache=cache)
                min_l2_simulated = format_size(simulated.matched_size)
                configs_simulated = simulated.configs_simulated
                agree = simulated.matched_size == analytic.matched_size
            else:
                min_l2_simulated = "-"
                configs_simulated = 0
                agree = True
            rows.append(
                AnalyticScreenRow(
                    name=name,
                    scale=scale,
                    stream_hit_pct=analytic.stream_hit_rate_percent,
                    min_l2_analytic=format_size(analytic.matched_size),
                    min_l2_simulated=min_l2_simulated,
                    configs_analytic=analytic.configs_simulated,
                    configs_simulated=configs_simulated,
                    grid_configs=grid,
                    agree=agree,
                )
            )
    return rows


def render_analytic4(rows: List[AnalyticScreenRow]) -> str:
    """Render the analytic-screen exhibit with its simulation budget."""
    table = render_table(
        ["bench", "scale", "stream hit %", "analytic L2", "simulated L2", "cfgs", "brute cfgs"],
        [
            [
                r.name,
                r.scale,
                r.stream_hit_pct,
                r.min_l2_analytic,
                r.min_l2_simulated,
                f"{r.configs_analytic}/{r.grid_configs}",
                f"{r.configs_simulated}/{r.grid_configs}",
            ]
            for r in rows
        ],
        title="Analytic Table 4 screen: stack-distance search vs brute force",
        precision=2,
    )
    disagreements = [r for r in rows if not r.agree]
    if disagreements:
        cells = ", ".join(f"{r.name}@{r.scale:g}" for r in disagreements)
        return table + f"\n\nDISAGREEMENTS: {cells}"
    return table + "\n\nall matched sizes agree with brute-force simulation"


# -- mechanism zoo ----------------------------------------------------------


def default_zoo() -> Dict[str, MechanismConfig]:
    """The headline mechanism set: streams, VC, MC, and both hybrids.

    The victim/miss caches use Jouppi's canonical fully-associative
    sizes (16 entries); the victim cache's shadow tag array defaults to
    the paper L1 geometry (256 sets, 4-way).  Labels come from
    :func:`~repro.mechanisms.mechanism_label` so they match CLI specs.
    """
    zoo = (
        MechanismConfig.for_streams(),
        MechanismConfig.victim(16),
        MechanismConfig.misscache(16),
        MechanismConfig.hybrid(
            MechanismConfig.victim(16), MechanismConfig.for_streams()
        ),
        MechanismConfig.hybrid(
            MechanismConfig.misscache(16), MechanismConfig.for_streams()
        ),
    )
    return {mechanism_label(mech): mech for mech in zoo}


@dataclass(frozen=True)
class MechZooRow:
    """One (workload, scale, mechanism) cell of the mechanism zoo."""

    name: str
    scale: float
    mechanism: str
    hit_pct: float
    min_l2: str
    configs_simulated: int
    sizes_pruned: int
    match: MatchResult


def mechzoo(
    names: Optional[Sequence[str]] = None,
    scales: Optional[Dict[str, Tuple[float, float]]] = None,
    cache: Optional[MissTraceCache] = None,
    mechanisms: Optional[Dict[str, MechanismConfig]] = None,
    analytic: bool = True,
) -> List[MechZooRow]:
    """Minimum matching L2 per secondary mechanism (the headline zoo).

    For every benchmark (at its Table 4 scales where defined, else 1.0)
    and every mechanism in the zoo, find the smallest secondary cache
    whose hit rate matches the mechanism's — Table 4 generalised from
    streams to the whole mechanism family.  The default path goes
    through the analytic screen (mechanism-agnostic pruning; see
    docs/analytic.md), so every reported match is still witnessed by
    real sampled simulation; ``analytic=False`` forces the brute-force
    search instead.
    """
    names = names if names is not None else PAPER_BENCHMARKS
    scales = scales if scales is not None else TABLE4_SCALES
    cache = cache if cache is not None else default_cache()
    mechanisms = mechanisms if mechanisms is not None else default_zoo()
    rows = []
    for name in names:
        for scale in scales.get(name, (1.0,)):
            for mech in mechanisms.values():
                if analytic:
                    from repro.analytic import min_matching_l2_size_analytic

                    match = min_matching_l2_size_analytic(
                        name, scale=scale, cache=cache, mechanism=mech
                    )
                else:
                    match = min_matching_l2_size(
                        name, scale=scale, cache=cache, mechanism=mech
                    )
                rows.append(
                    MechZooRow(
                        name=name,
                        scale=scale,
                        mechanism=match.mechanism,
                        hit_pct=match.stream_hit_rate_percent,
                        min_l2=format_size(match.matched_size),
                        configs_simulated=match.configs_simulated,
                        sizes_pruned=match.sizes_pruned,
                        match=match,
                    )
                )
    return rows


def render_mechzoo(rows: List[MechZooRow]) -> str:
    """Render the zoo as a (bench, scale) x mechanism pivot table."""
    order: List[str] = []
    cells: Dict[Tuple[str, float, str], str] = {}
    keys: List[Tuple[str, float]] = []
    for r in rows:
        if r.mechanism not in order:
            order.append(r.mechanism)
        if (r.name, r.scale) not in keys:
            keys.append((r.name, r.scale))
        cells[(r.name, r.scale, r.mechanism)] = f"{r.min_l2} @{r.hit_pct:.1f}%"
    table = render_table(
        ["bench", "scale"] + order,
        [
            [name, scale] + [cells.get((name, scale, mech), "-") for mech in order]
            for name, scale in keys
        ],
        title="Mechanism zoo: min matching L2 (hit % matched) per mechanism",
        precision=2,
    )
    simulated = sum(r.configs_simulated for r in rows)
    pruned = sum(r.sizes_pruned for r in rows)
    return table + (
        f"\n\ncells: {len(rows)}; L2 configurations simulated: {simulated}; "
        f"ladder sizes pruned analytically: {pruned}; "
        "every reported match witnessed by sampled simulation"
    )


# -- exhibit registry -------------------------------------------------------

#: Canonical (driver, renderer) registry of every exhibit, shared by the
#: CLI (``repro exhibit``) and the service (``POST /v1/exhibit``).
EXHIBITS = {
    "table1": (table1, render_table1),
    "figure3": (figure3, render_figure3),
    "table2": (table2, render_table2),
    "table3": (table3, render_table3),
    "figure5": (figure5, render_figure5),
    "figure8": (figure8, render_figure8),
    "figure9": (figure9, render_figure9),
    "table4": (table4, render_table4),
    "analytic4": (analytic4, render_analytic4),
    "mechzoo": (mechzoo, render_mechzoo),
}

#: Exhibits whose drivers fan out through the parallel sweep engine and
#: therefore accept ``jobs``/``store`` arguments.
SWEEP_EXHIBITS = ("figure3", "figure9")

__all__ += ["EXHIBITS", "SWEEP_EXHIBITS"]
