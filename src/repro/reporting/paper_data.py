"""The paper's published numbers, transcribed for side-by-side reporting.

Values come from Table 1 (benchmark characteristics), Figure 3 (hit rate
at ten streams, read off the curves), Table 2 (extra bandwidth), Table 3
(stream length distribution), the Figure 5/8 discussion in the text, and
Table 4 (the scaling study).  Where a figure had to be read by eye the
value is approximate — these are *shape* references, not gospel.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "TABLE1",
    "FIGURE3_HIT_AT_10",
    "TABLE2_EB",
    "TABLE3_SHORT_LONG",
    "FIGURE5_TEXT",
    "FIGURE8_GAINS",
    "TABLE4",
]

#: name -> (suite, input, data MB, D-miss rate %, MPI %).
TABLE1: Dict[str, Tuple[str, str, float, float, float]] = {
    "embar": ("NAS", "2^16-number batches", 1.0, 0.28, 0.10),
    "mgrid": ("NAS", "32x32x32 grid", 1.0, 0.84, 0.08),
    "cgm": ("NAS", "1400x1400, 78148 nnz", 2.9, 3.33, 1.43),
    "fftpde": ("NAS", "64x64x64 complex", 14.7, 3.08, 0.50),
    "buk": ("NAS", "64K ints, maxkey 2048", 0.80, 0.53, 0.20),
    "appsp": ("NAS", "24x24x24, 50 iters", 2.2, 2.24, 0.38),
    "appbt": ("NAS", "18x18x18, 30 iters", 4.2, 1.88, 0.45),
    "applu": ("NAS", "18x18x18, 50 iters", 5.4, 1.26, 0.18),
    "spec77": ("PERFECT", "64x1x16, 720 steps", 1.3, 0.50, 0.15),
    "adm": ("PERFECT", "", 0.6, 0.04, 0.00),
    "bdna": ("PERFECT", "500 molecules", 2.1, 1.39, 0.42),
    "dyfesm": ("PERFECT", "4 elements, 1000 steps", 0.1, 0.01, 0.00),
    "mdg": ("PERFECT", "343 molecules, 100 steps", 0.2, 0.03, 0.01),
    "qcd": ("PERFECT", "12^4 lattice", 9.2, 0.16, 0.06),
    "trfd": ("PERFECT", "", 8.0, 0.05, 0.00),
}

#: Approximate Figure 3 hit rate (%) at ten streams, no filter.
FIGURE3_HIT_AT_10: Dict[str, float] = {
    "embar": 95, "mgrid": 85, "cgm": 85, "fftpde": 26, "buk": 65,
    "appsp": 33, "appbt": 65, "applu": 62, "spec77": 73, "adm": 25,
    "bdna": 70, "dyfesm": 25, "mdg": 50, "qcd": 50, "trfd": 50,
}

#: Table 2: extra bandwidth (%) of ordinary (unfiltered) streams.
TABLE2_EB: Dict[str, int] = {
    "embar": 8, "cgm": 30, "mgrid": 36, "fftpde": 158, "buk": 48,
    "appsp": 134, "appbt": 62, "applu": 38, "spec77": 44, "adm": 150,
    "bdna": 68, "dyfesm": 108, "mdg": 76, "qcd": 74, "trfd": 96,
}

#: Table 3 endpoints: (% hits from lengths 1-5, % hits from lengths > 20).
#: The middle buckets are small for every benchmark.
TABLE3_SHORT_LONG: Dict[str, Tuple[int, int]] = {
    "embar": (1, 99), "mgrid": (13, 86), "cgm": (3, 97), "fftpde": (41, 59),
    "buk": (4, 93), "appsp": (5, 84), "appbt": (63, 37), "applu": (22, 64),
    "spec77": (14, 84), "adm": (73, 9), "bdna": (36, 33), "dyfesm": (50, 25),
    "mdg": (32, 46), "qcd": (50, 43), "trfd": (7, 90),
}

#: Section 6.1 text: (hit without filter, hit with, EB without, EB with).
FIGURE5_TEXT: Dict[str, Tuple[Optional[float], Optional[float], float, float]] = {
    "trfd": (50, 50, 96, 11),
    "buk": (65, 65, 48, 7),
    "appsp": (33, 33, 134, 45),
    "cgm": (85, 85, 30, 13),
    "fftpde": (26, 29, 158, 37),
    "appbt": (65, 45, 62, 48),
}

#: Section 7.1 text: unit-stride-only hit -> with constant-stride detection.
FIGURE8_GAINS: Dict[str, Tuple[float, float]] = {
    "fftpde": (26, 71),
    "appsp": (33, 65),
    "trfd": (50, 65),
}

#: Table 4: name -> ((input, hit %, min L2), (input, hit %, min L2)).
TABLE4: Dict[str, Tuple[Tuple[str, int, str], Tuple[str, int, str]]] = {
    "appsp": (("12^3", 43, "128 KB"), ("24^3", 65, "1 MB")),
    "appbt": (("12^3", 50, "512 KB"), ("24^3", 52, "2 MB")),
    "applu": (("12^3", 62, "1 MB"), ("24^3", 73, "2 MB")),
    "cgm": (("1400", 85, "1 MB"), ("5600", 51, "64 KB")),
    "mgrid": (("32^3", 76, "2 MB"), ("64^3", 88, "4 MB")),
}
