"""Rendering of the paper's tables and figures."""

from repro.reporting.figures import render_bars, render_series
from repro.reporting.tables import format_cell, render_table

__all__ = ["format_cell", "render_bars", "render_series", "render_table"]
