"""Plain-text table rendering for the paper's exhibits.

Deliberately dependency-free: benchmarks print these tables next to the
paper's reference values so a reader can diff shapes at a glance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value, precision: int = 1) -> str:
    """Human-format one cell: floats get ``precision`` digits."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    precision: int = 1,
) -> str:
    """Render an aligned ASCII table.

    Numeric columns are right-aligned, text columns left-aligned
    (decided per column from the first data row).

    Raises:
        ValueError: if any row's arity differs from the header's.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row arity {len(row)} does not match {len(headers)} headers: {row!r}"
            )
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    right_align = [False] * len(headers)
    if rows:
        for i, cell in enumerate(rows[0]):
            right_align[i] = isinstance(cell, (int, float)) and not isinstance(cell, bool)

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if right_align[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)
