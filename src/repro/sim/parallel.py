"""Process-pool sweep executor over (workload x config) grids.

Every figure in the paper is a grid: replay one set of miss traces under
a family of stream configurations.  :func:`run_grid` fans such a grid out
over ``concurrent.futures.ProcessPoolExecutor`` workers:

* each worker process owns a :class:`~repro.sim.runner.MissTraceCache`
  hydrated from a shared persistent
  :class:`~repro.trace.store.TraceStore`, so the L1 simulation of each
  workload is computed (at most) once *across the whole fleet* — and not
  at all when the store is warm;
* replayed :class:`~repro.core.prefetcher.StreamStats` are themselves
  memoised in the store (replays are deterministic), so a warm store
  turns a whole figure sweep into pure loads;
* tasks are scheduled in chunks to amortise IPC, a failed cell returns a
  tagged :class:`TaskError` instead of killing the sweep, and results
  are assembled in task order regardless of completion order.

With ``jobs=1`` the grid runs in-process (no pool, no pickling) through
exactly the same code path, which is what the equivalence tests compare
against: serial and parallel execution produce bit-identical statistics.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Union

from repro.caches.cache import CacheConfig
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamStats
from repro.mechanisms import MechanismConfig, MechStats
from repro.obs.context import bind_trace, current_trace_id
from repro.obs.metrics import engine_registry
from repro.obs.spans import get_tracer
from repro.sim.results import RunResult
from repro.sim.runner import MissTraceCache, resolve_workload_ref
from repro.sim.vector import replay_secondary, replay_streams
from repro.trace.store import TraceStore, mech_result_digest, result_digest
from repro.workloads.base import Workload

__all__ = [
    "SweepTask",
    "TaskError",
    "SweepExecutionError",
    "make_pool",
    "run_grid",
    "grid_stats",
]

WorkloadRef = Union[str, Workload]


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep grid.

    Attributes:
        key: caller-chosen label the result is reported under (e.g. the
            swept parameter value, or a ``(workload, n)`` pair).
        workload: registered workload name, or an instance.  Names are
            preferred for ``jobs > 1`` — instances are pickled to the
            workers wholesale, including any already-built trace.
        config: stream configuration to replay, or any
            :class:`~repro.mechanisms.MechanismConfig` (a mechanism cell's
            ``RunResult.streams`` then holds :class:`MechStats`).
        scale: input scale (ignored if ``workload`` is an instance).
        seed: workload seed (ignored if ``workload`` is an instance).
        trace_id: optional request trace the cell belongs to
            (:mod:`repro.obs.context`).  Pickled with the task, so the
            trace crosses the spawn boundary into pool workers and tags
            their spans/results.  Provenance only — excluded from
            equality like the matching fields on
            :class:`~repro.sim.results.RunResult`.
    """

    key: Hashable
    workload: WorkloadRef
    config: Union[StreamConfig, MechanismConfig]
    scale: float = 1.0
    seed: int = 0
    trace_id: Optional[str] = field(default=None, compare=False)


def _json_key(key: Hashable):
    """Render a task key as a JSON-safe value (tuples become lists)."""
    if isinstance(key, tuple):
        return [_json_key(part) for part in key]
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    return repr(key)


@dataclass(frozen=True)
class TaskError:
    """A failed grid cell, reported in place of its :class:`RunResult`.

    ``wall_time_s``/``worker`` record how long the cell burned before
    failing and which process ran it — without them failed cells are
    invisible in any timing analysis (a sweep stuck on one pathological
    cell used to look idle).  Excluded from equality, like the matching
    fields on :class:`~repro.sim.results.RunResult`.
    """

    key: Hashable
    workload: str
    error: str
    details: str = field(default="", repr=False)
    wall_time_s: float = field(default=0.0, compare=False)
    worker: int = field(default=0, compare=False)
    trace_id: str = field(default="", compare=False)

    def to_payload(self) -> dict:
        """JSON-safe rendering carrying the full traceback.

        Service responses and structured logs use this so a failed cell
        is diagnosable from the payload alone — nothing is dropped.
        """
        return {
            "key": _json_key(self.key),
            "workload": self.workload,
            "error": self.error,
            "traceback": self.details,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "trace_id": self.trace_id,
        }


class SweepExecutionError(RuntimeError):
    """Raised by :func:`grid_stats` when any grid cell failed.

    ``errors`` keeps every :class:`TaskError` (tracebacks included);
    :meth:`payload` renders them for JSON error responses.
    """

    def __init__(self, errors: Sequence[TaskError]):
        self.errors = list(errors)
        lines = ", ".join(f"{e.key!r}: {e.error}" for e in self.errors[:5])
        more = "" if len(self.errors) <= 5 else f" (+{len(self.errors) - 5} more)"
        hint = ""
        if self.errors and self.errors[0].details:
            last = self.errors[0].details.strip().splitlines()[-1]
            hint = f" [first traceback ends: {last}]"
        super().__init__(f"{len(self.errors)} sweep task(s) failed: {lines}{more}{hint}")

    def payload(self) -> List[dict]:
        """Every failed cell as a JSON-safe dict (key, error, traceback)."""
        return [error.to_payload() for error in self.errors]


def _run_one(task: SweepTask, cache: MissTraceCache) -> Union[RunResult, TaskError]:
    """Execute one cell against a (possibly store-backed) cache.

    Every cell — success or failure — is timed and tagged with the pid
    of the process that ran it, wrapped in a ``cell`` span, and counted
    in the engine registry under its outcome (``store``/``replayed``/
    ``error``).  Manifests and traces are built entirely from these
    per-cell records, so they work identically in serial and pooled
    runs.
    """
    name, scale, seed, _ = resolve_workload_ref(task.workload, task.scale, task.seed)
    registry = engine_registry()
    trace_id = task.trace_id or current_trace_id() or ""
    started = time.perf_counter()
    try:
        with bind_trace(task.trace_id), get_tracer().span(
            "cell", key=str(task.key), workload=name
        ):
            miss_trace, summary = cache.get(task.workload, scale=scale, seed=seed)
            store = cache.store
            config = task.config
            stats: Optional[Union[StreamStats, MechStats]] = None
            digest = None
            if isinstance(config, MechanismConfig):
                if store is not None:
                    digest = mech_result_digest(
                        cache.trace_key(name, scale, seed), config
                    )
                    stats = store.load_mech_result(digest, config)
                source = "store"
                if stats is None:
                    source = "replayed"
                    with get_tracer().span("mech.replay", workload=name):
                        stats = replay_secondary(config, miss_trace)
                    if store is not None:
                        store.save_mech_result(digest, stats)
            else:
                if store is not None:
                    digest = result_digest(cache.trace_key(name, scale, seed), config)
                    stats = store.load_result(digest)
                source = "store"
                if stats is None:
                    source = "replayed"
                    with get_tracer().span("stream.replay", workload=name):
                        stats = replay_streams(config, miss_trace)
                    if store is not None:
                        store.save_result(digest, stats)
        wall = time.perf_counter() - started
        _count_cell(registry, source, wall)
        return RunResult(
            workload=name,
            scale=scale,
            seed=seed,
            l1=summary,
            streams=stats,
            wall_time_s=wall,
            worker=os.getpid(),
            source=source,
            trace_id=trace_id,
        )
    except Exception as exc:  # tagged, not fatal: one bad cell must not kill a sweep
        wall = time.perf_counter() - started
        _count_cell(registry, "error", wall)
        return TaskError(
            key=task.key,
            workload=name,
            error=f"{type(exc).__name__}: {exc}",
            details=traceback.format_exc(),
            wall_time_s=wall,
            worker=os.getpid(),
            trace_id=trace_id,
        )


def _count_cell(registry, source: str, wall: float) -> None:
    """Tally one finished cell in the engine registry."""
    registry.counter("engine_cells_total", "grid cells executed").inc()
    registry.counter(
        f"engine_cells_{source}_total", f"grid cells with outcome {source!r}"
    ).inc()
    registry.histogram("engine_cell_wall_ms", "wall time of one grid cell").observe(
        1e3 * wall
    )


# -- worker-process state ---------------------------------------------------

_WORKER_CACHE: Optional[MissTraceCache] = None


def _init_worker(
    l1_config: CacheConfig,
    keep_pcs: bool,
    store_root: Optional[str],
    trace_enabled: bool = False,
) -> None:
    """Build this worker's cache once (executor ``initializer``).

    ``trace_enabled`` carries the parent's tracer state across the
    spawn boundary: spawned workers start with a fresh (disabled)
    module tracer, so the parent snapshots ``get_tracer().enabled`` at
    pool-creation time and replays it here.
    """
    global _WORKER_CACHE
    store = TraceStore(store_root) if store_root is not None else None
    _WORKER_CACHE = MissTraceCache(l1_config, keep_pcs=keep_pcs, store=store)
    # Fork-started workers inherit the parent's registry contents and
    # span buffer; shipping those back would double-count them.  Every
    # worker starts from zero telemetry.
    engine_registry().drain()
    tracer = get_tracer()
    tracer.clear()
    tracer.enabled = trace_enabled


def _run_chunk(index: int, chunk: List[SweepTask]):
    """Run one chunk of tasks in a worker; never raises.

    Besides the per-task results, each chunk ships back the telemetry
    the worker accumulated while running it: a drained (snapshot +
    reset) engine-registry delta, and any span events.  Draining means
    repeated chunks from the same worker never double-count, so the
    parent can merge every payload unconditionally.
    """
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    tracer = get_tracer()
    with tracer.span("grid.chunk", index=index, tasks=len(chunk)):
        results = [_run_one(task, _WORKER_CACHE) for task in chunk]
    telemetry = {
        "metrics": engine_registry().drain(),
        "spans": tracer.drain() if tracer.enabled else [],
    }
    return index, results, telemetry


def _worker_ready() -> bool:
    """No-op task used to force worker spin-up (see :func:`make_pool`)."""
    return _WORKER_CACHE is not None


# -- the executor -----------------------------------------------------------


def make_pool(
    jobs: int,
    l1_config: Optional[CacheConfig] = None,
    keep_pcs: bool = False,
    store: Optional[TraceStore] = None,
    warm: bool = True,
) -> ProcessPoolExecutor:
    """A worker pool reusable across many :func:`run_grid` calls.

    :func:`run_grid` builds (and tears down) a pool per invocation,
    which is right for one-shot sweeps but wasteful for a long-lived
    caller such as ``repro.service`` that dispatches many small batches.
    This constructs the same initialized pool once; pass it to
    :func:`run_grid` via ``executor=``.  The ``l1_config``/``keep_pcs``/
    ``store`` baked in here must match what later ``run_grid`` calls
    assume — workers are initialized exactly once.

    Workers use the ``spawn`` start method: a long-lived caller holds
    sockets and threads that fork-started children would silently
    inherit (an accepted connection duplicated into a worker never
    reaches EOF at the client), and spawn is immune by construction.
    ``warm=True`` additionally forces every worker to spin up *now*, so
    the first real batch does not pay the spawn+import latency.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    if l1_config is None:
        l1_config = CacheConfig.paper_l1()
    store_root = str(store.root) if store is not None else None
    pool = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_init_worker,
        initargs=(l1_config, keep_pcs, store_root, get_tracer().enabled),
    )
    if warm:
        for future in [pool.submit(_worker_ready) for _ in range(jobs)]:
            future.result()
    return pool


def run_grid(
    tasks: Sequence[SweepTask],
    jobs: int = 1,
    cache: Optional[MissTraceCache] = None,
    store: Optional[TraceStore] = None,
    l1_config: Optional[CacheConfig] = None,
    keep_pcs: bool = False,
    chunk_size: Optional[int] = None,
    executor: Optional[ProcessPoolExecutor] = None,
) -> List[Union[RunResult, TaskError]]:
    """Execute a sweep grid, serially or across a process pool.

    Args:
        tasks: grid cells; results come back in the same order.
        jobs: worker processes (``<= 1`` runs in-process, no pool).
        cache: in-process cache for the serial path; for ``jobs > 1`` its
            ``l1_config``/``keep_pcs``/``store`` seed the workers (whose
            entries cannot be shared back).
        store: persistent trace store shared by all workers; defaults to
            ``cache.store``.  Without one, each worker recomputes the L1
            simulations it needs — correct, but the store is what makes
            parallel and repeated runs fast.
        l1_config: primary cache geometry (defaults to ``cache``'s, or
            the paper L1).
        keep_pcs: propagate PCs into the miss traces.
        chunk_size: tasks per scheduling unit (default: enough for ~4
            chunks per worker, amortising task pickling).
        executor: an already-initialized pool from :func:`make_pool`,
            reused across calls and **not** shut down here.  Its baked-in
            ``l1_config``/``keep_pcs``/``store`` take precedence over the
            arguments above, which only shape chunking.

    Returns:
        One :class:`RunResult` per task, with :class:`TaskError` standing
        in for any cell whose simulation raised.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if cache is not None:
        if l1_config is None:
            l1_config = cache.l1_config
        keep_pcs = keep_pcs or cache.keep_pcs
        if store is None:
            store = cache.store
    if l1_config is None:
        l1_config = CacheConfig.paper_l1()

    if executor is None and (jobs <= 1 or len(tasks) <= 1):
        if cache is None:
            cache = MissTraceCache(l1_config, keep_pcs=keep_pcs, store=store)
        with get_tracer().span("grid.run", cells=len(tasks), jobs=1):
            return [_run_one(task, cache) for task in tasks]

    workers = jobs
    if executor is not None:
        workers = max(1, executor._max_workers)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(tasks) / (workers * 4)))
    chunks = [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]
    store_root = str(store.root) if store is not None else None
    assembled: Dict[int, List[Union[RunResult, TaskError]]] = {}
    pool = executor
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            initializer=_init_worker,
            initargs=(l1_config, keep_pcs, store_root, get_tracer().enabled),
        )
    try:
        with get_tracer().span("grid.run", cells=len(tasks), jobs=workers):
            futures = [
                pool.submit(_run_chunk, i, chunk) for i, chunk in enumerate(chunks)
            ]
            for future in as_completed(futures):
                index, results, telemetry = future.result()
                assembled[index] = results
                # Fold each worker's drained telemetry into this process
                # so sweeps observe one registry and one trace no matter
                # how many processes did the work.
                engine_registry().merge(telemetry.get("metrics") or {})
                get_tracer().extend(telemetry.get("spans") or [])
    finally:
        if executor is None:
            pool.shutdown()
    return [result for i in range(len(chunks)) for result in assembled[i]]


def grid_stats(
    tasks: Sequence[SweepTask],
    jobs: int = 1,
    cache: Optional[MissTraceCache] = None,
    store: Optional[TraceStore] = None,
    **kwargs: Any,
) -> Dict[Hashable, Union[StreamStats, MechStats]]:
    """Like :func:`run_grid`, keyed by task key and reduced to stats.

    Raises:
        SweepExecutionError: if any cell failed (the sweep helpers want
            a complete dict or nothing).
    """
    results = run_grid(tasks, jobs=jobs, cache=cache, store=store, **kwargs)
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        raise SweepExecutionError(errors)
    return {
        task.key: result.streams
        for task, result in zip(tasks, results)
        if isinstance(result, RunResult)
    }
