"""Per-access composition of the paper's memory system (Figure 1).

:class:`MemorySystem` is the library's "live" front door: a primary cache
backed by stream buffers backed by main memory, stepped one processor
reference at a time.  The bulk experiment path
(:mod:`repro.sim.runner`) is faster for sweeps; this class exists for
interactive use, examples and tests that want to observe where each
reference was serviced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.caches.cache import Cache, CacheConfig
from repro.core.bank import Lookup
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher, StreamStats
from repro.trace.events import Access, AccessKind, Trace

__all__ = ["ServiceLevel", "SystemStats", "MemorySystem"]


class ServiceLevel(enum.Enum):
    """Where a reference was serviced."""

    L1 = "l1"
    STREAM = "stream"
    MEMORY = "memory"


@dataclass
class SystemStats:
    """End-to-end reference accounting."""

    references: int = 0
    l1_hits: int = 0
    stream_hits: int = 0
    memory_fetches: int = 0
    writebacks: int = 0

    @property
    def serviced_on_chip_fraction(self) -> float:
        """Fraction serviced without a demand memory fetch."""
        if not self.references:
            return 0.0
        return (self.l1_hits + self.stream_hits) / self.references

    def amat(
        self,
        l1_time: float = 1.0,
        stream_time: float = 3.0,
        memory_time: float = 50.0,
    ) -> float:
        """Average memory access time under a simple latency model.

        The paper deliberately avoids timing; this helper exists for
        examples that want a feel for the hit rates' impact.  Stream
        hits are cheaper than memory because the prefetch already
        covered (most of) the latency; the defaults are illustrative,
        not calibrated.
        """
        if not self.references:
            return 0.0
        total = (
            self.l1_hits * l1_time
            + self.stream_hits * stream_time
            + self.memory_fetches * memory_time
        )
        return total / self.references


class MemorySystem:
    """L1 + stream buffers + main memory, stepped per reference."""

    def __init__(
        self,
        l1_config: Optional[CacheConfig] = None,
        stream_config: Optional[StreamConfig] = None,
    ):
        self.l1 = Cache(l1_config if l1_config is not None else CacheConfig.paper_l1())
        config = stream_config if stream_config is not None else StreamConfig.filtered()
        if config.block_bits != self.l1.config.block_bits:
            raise ValueError(
                f"stream block_bits {config.block_bits} != L1 block bits "
                f"{self.l1.config.block_bits}"
            )
        self.prefetcher = StreamPrefetcher(config)
        self.stats = SystemStats()

    def access(self, addr: int, kind: AccessKind = AccessKind.READ) -> ServiceLevel:
        """Issue one processor reference; returns the servicing level."""
        self.stats.references += 1
        is_write = kind is AccessKind.WRITE
        hit, writeback = self.l1.access(addr, is_write)
        if writeback is not None:
            # Write-backs bypass the streams and invalidate stale copies.
            self.stats.writebacks += 1
            self.prefetcher.handle_writeback(writeback << self.l1.config.block_bits)
        if hit:
            self.stats.l1_hits += 1
            return ServiceLevel.L1
        outcome = self.prefetcher.handle_miss(addr, is_ifetch=kind is AccessKind.IFETCH)
        if outcome is Lookup.HIT:
            self.stats.stream_hits += 1
            return ServiceLevel.STREAM
        self.stats.memory_fetches += 1
        return ServiceLevel.MEMORY

    def run(self, trace: Trace) -> SystemStats:
        """Feed a whole trace through :meth:`access`."""
        for access in trace:
            self.access(access.addr, access.kind)
        return self.stats

    def stream_stats(self) -> StreamStats:
        """Finalised stream-buffer statistics."""
        return self.prefetcher.finalize()
