"""Run workloads through the memory hierarchy, with miss-trace caching.

The paper's methodology simulates the *primary-cache miss stream* (Shade
traces of L1 misses fed to a stream-buffer simulator).  We follow the
same factoring: the L1 simulation of a (workload, scale, seed, L1-config)
tuple is computed once and cached in-process, then every stream-buffer or
secondary-cache configuration replays the short miss trace.  This is what
makes the parameter sweeps of Figures 3/5/8/9 cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

from repro.caches.cache import Cache, CacheConfig, MissTrace
from repro.caches.split import SplitL1, SplitL1Config
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher, StreamStats
from repro.mem.address import AddressSpace
from repro.sim.results import L1Summary, RunResult
from repro.trace.compress import compress_consecutive
from repro.trace.events import AccessKind, Trace
from repro.workloads.base import Workload, get_workload

__all__ = ["MissTraceCache", "default_cache", "run_streams", "run_result"]

import numpy as np


@dataclass(frozen=True)
class _Key:
    workload: str
    scale: float
    seed: int
    l1: CacheConfig


class MissTraceCache:
    """In-process cache of (workload x L1) miss traces.

    Not thread safe; create one per benchmarking session (module-level
    :func:`default_cache` serves the common case).

    Args:
        l1_config: primary cache geometry (paper default).
        keep_pcs: propagate synthetic PCs into the miss traces.  Off by
            default — only PC-indexed baselines need them and carrying
            them disables the L1 fast path.
    """

    def __init__(self, l1_config: Optional[CacheConfig] = None, keep_pcs: bool = False):
        self.l1_config = l1_config if l1_config is not None else CacheConfig.paper_l1()
        self.keep_pcs = keep_pcs
        self._entries: Dict[_Key, Tuple[MissTrace, L1Summary]] = {}

    def get(
        self,
        workload: Union[str, Workload],
        scale: float = 1.0,
        seed: int = 0,
    ) -> Tuple[MissTrace, L1Summary]:
        """Miss trace + L1 summary for a workload, computing on first use.

        Accepts a registered workload name or a pre-built instance (the
        latter bypasses the cache key's name/scale/seed and is always
        recomputed unless identical parameters were cached before).
        """
        if isinstance(workload, Workload):
            instance = workload
            key = _Key(instance.name, instance.scale, instance.seed, self.l1_config)
        else:
            key = _Key(workload, scale, seed, self.l1_config)
            instance = None
        cached = self._entries.get(key)
        if cached is not None:
            return cached
        if instance is None:
            instance = get_workload(key.workload, scale=key.scale, seed=key.seed)
        result = simulate_l1(instance, self.l1_config, keep_pcs=self.keep_pcs)
        self._entries[key] = result
        return result

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def simulate_l1(
    workload: Workload,
    l1_config: Optional[CacheConfig] = None,
    keep_pcs: bool = False,
) -> Tuple[MissTrace, L1Summary]:
    """Run a workload's trace through the primary cache.

    Data-only traces run through a single D-cache with exact
    consecutive-same-block compression; traces containing instruction
    fetches run through the split I+D pair.  Synthetic PCs are stripped
    unless ``keep_pcs`` (they are only needed by PC-indexed baselines
    and disable the L1 fast path).
    """
    config = l1_config if l1_config is not None else CacheConfig.paper_l1()
    trace = workload.trace()
    if trace.has_pcs and not keep_pcs:
        trace = Trace(trace.addrs, trace.kinds)
    has_ifetch = bool(np.any(trace.kinds == int(AccessKind.IFETCH)))
    if has_ifetch:
        split = SplitL1(
            SplitL1Config(icache=replace(config, seed=config.seed + 1), dcache=config)
        )
        miss_trace = split.simulate(trace)
        summary = L1Summary.from_stats(
            split.stats,
            trace_length=len(trace),
            data_set_bytes=workload.data_set_bytes,
            ifetch_misses=split.icache.stats.misses,
        )
        return miss_trace, summary
    space = AddressSpace(block_size=config.block_size)
    compressed = compress_consecutive(trace, space)
    cache = Cache(config)
    miss_trace = cache.simulate(compressed.trace, weights=compressed.weights)
    summary = L1Summary.from_stats(
        cache.stats,
        trace_length=len(trace),
        data_set_bytes=workload.data_set_bytes,
    )
    return miss_trace, summary


_DEFAULT_CACHE: Optional[MissTraceCache] = None


def default_cache() -> MissTraceCache:
    """The shared module-level miss-trace cache."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = MissTraceCache()
    return _DEFAULT_CACHE


def run_streams(
    workload: Union[str, Workload],
    config: StreamConfig,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> StreamStats:
    """Simulate one stream configuration over a workload's miss stream."""
    cache = cache if cache is not None else default_cache()
    miss_trace, _ = cache.get(workload, scale=scale, seed=seed)
    return StreamPrefetcher(config).run(miss_trace)


def run_result(
    workload: Union[str, Workload],
    config: StreamConfig,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> RunResult:
    """Like :func:`run_streams` but bundled with the L1 summary."""
    cache = cache if cache is not None else default_cache()
    miss_trace, summary = cache.get(workload, scale=scale, seed=seed)
    stats = StreamPrefetcher(config).run(miss_trace)
    if isinstance(workload, Workload):
        name, scale, seed = workload.name, workload.scale, workload.seed
    else:
        name = workload
    return RunResult(workload=name, scale=scale, seed=seed, l1=summary, streams=stats)
