"""Run workloads through the memory hierarchy, with miss-trace caching.

The paper's methodology simulates the *primary-cache miss stream* (Shade
traces of L1 misses fed to a stream-buffer simulator).  We follow the
same factoring: the L1 simulation of a (workload, scale, seed, L1-config)
tuple is computed once and cached in-process, then every stream-buffer or
secondary-cache configuration replays the short miss trace.  This is what
makes the parameter sweeps of Figures 3/5/8/9 cheap.

Two extensions harden this for long benchmarking sessions:

* the in-process cache is LRU-bounded (``max_entries``) so sweeps over
  many (workload, scale, seed) tuples cannot grow memory without bound;
* an optional :class:`~repro.trace.store.TraceStore` layers a persistent
  on-disk tier underneath, so repeated benchmark *processes* never
  recompute an L1 simulation either (see ``docs/api.md``, "Scaling
  sweeps").
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Union

import time

from repro.caches.cache import Cache, CacheConfig, MissTrace
from repro.caches.split import SplitL1, SplitL1Config
from repro.check import invariants as _inv
from repro.obs.events import StoreEvent, record_event
from repro.obs.metrics import engine_registry
from repro.obs.spans import get_tracer
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamStats
from repro.mem.address import AddressSpace
from repro.mechanisms import MechanismConfig, MechStats
from repro.sim.results import L1Summary, RunResult
from repro.sim.vector import (
    ENGINE_VECTOR,
    replay_secondary,
    replay_streams,
    resolve_engine,
    vector_simulate_cache,
)
from repro.trace.compress import compress_consecutive
from repro.trace.events import AccessKind, Trace
from repro.trace.store import TraceStore, canonical_scale, trace_digest
from repro.workloads.base import Workload, get_workload

__all__ = [
    "MissTraceCache",
    "default_cache",
    "resolve_workload_ref",
    "run_secondary",
    "run_streams",
    "run_result",
    "simulate_l1",
]

import numpy as np

#: Default in-process cache bound: generous (a full paper sweep touches
#: ~15 benchmarks x a few scales/seeds) yet finite, so open-ended sweep
#: sessions cannot accumulate thousands of multi-megabyte traces.
DEFAULT_MAX_ENTRIES = 64


def resolve_workload_ref(
    workload: Union[str, Workload], scale: float, seed: int
) -> Tuple[str, float, int, Optional[Workload]]:
    """Normalise a workload reference to ``(name, scale, seed, instance)``.

    A :class:`Workload` instance is authoritative: its own name/scale/seed
    describe what will actually be simulated, and any conflicting
    ``scale``/``seed`` arguments from the caller are ignored.  Every
    consumer (cache keys, result provenance) must resolve through this
    helper so the recorded parameters always match the simulation.  The
    scale is canonicalised (:func:`~repro.trace.store.canonical_scale`)
    so float-noise aliases of one scale share a key and a store digest.
    """
    if isinstance(workload, Workload):
        return workload.name, canonical_scale(workload.scale), workload.seed, workload
    return workload, canonical_scale(scale), seed, None


@dataclass(frozen=True)
class _Key:
    workload: str
    scale: float
    seed: int
    l1: CacheConfig


class MissTraceCache:
    """In-process cache of (workload x L1) miss traces.

    Thread safe: the entry map is guarded by a lock (the service
    orchestrator's warm-store fast path calls :meth:`get` from worker
    threads).  Concurrent misses on the same key may compute the same
    trace twice — a benign race, since the simulation is deterministic
    and the second insert overwrites with identical data.  Create one per
    benchmarking session (module-level :func:`default_cache` serves the
    common case).

    Args:
        l1_config: primary cache geometry (paper default).
        keep_pcs: propagate synthetic PCs into the miss traces.  Off by
            default — only PC-indexed baselines need them and carrying
            them disables the L1 fast path.
        store: optional persistent :class:`~repro.trace.store.TraceStore`
            consulted on an in-process miss and populated on compute, so
            traces survive across processes and sessions.
        max_entries: LRU bound on in-process entries (None = unbounded).
            The default (:data:`DEFAULT_MAX_ENTRIES`) comfortably holds a
            full paper sweep while keeping long multi-workload sessions
            bounded; eviction only drops the in-memory copy — a store, if
            configured, still holds the trace.
        hooks: optional callback fired on each lookup with a typed
            :class:`~repro.obs.events.StoreEvent` (``str``-compatible,
            so name-only hooks keep working) — ``trace_mem_hit``
            (in-process LRU hit), ``trace_store_hit`` (persistent tier
            hit) or ``trace_computed`` (fresh L1 simulation, with the
            simulation wall time as the event duration).  The service
            layer threads its metrics registry through here; hooks must
            be cheap and must not raise.  Every event is also folded
            into the process-global engine registry (``engine_runner_*``).
    """

    def __init__(
        self,
        l1_config: Optional[CacheConfig] = None,
        keep_pcs: bool = False,
        store: Optional[TraceStore] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        hooks: Optional[Callable[[str], None]] = None,
        engine: Optional[str] = None,
    ):
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries}")
        self.l1_config = l1_config if l1_config is not None else CacheConfig.paper_l1()
        self.keep_pcs = keep_pcs
        self.store = store
        self.max_entries = max_entries
        self.hooks = hooks
        # Engine choice never enters cache keys or store digests: the
        # vector engine is bit-identical to the scalar one, so entries
        # are interchangeable (None = resolve per call via REPRO_ENGINE).
        self.engine = engine
        self._entries: "OrderedDict[_Key, Tuple[MissTrace, L1Summary]]" = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0
        self.store_hits = 0

    def _emit(
        self, name: str, digest: Optional[str] = None, duration_s: float = 0.0
    ) -> None:
        event = StoreEvent(name, digest=digest, duration_s=duration_s)
        record_event(event, group="runner")
        if self.hooks is not None:
            self.hooks(event)

    def get(
        self,
        workload: Union[str, Workload],
        scale: float = 1.0,
        seed: int = 0,
    ) -> Tuple[MissTrace, L1Summary]:
        """Miss trace + L1 summary for a workload, computing on first use.

        Accepts a registered workload name or a pre-built instance (the
        latter's own name/scale/seed form the cache key).  Lookup order:
        in-process LRU, then the persistent store (if configured), then a
        fresh L1 simulation whose result populates both tiers.
        """
        name, scale, seed, instance = resolve_workload_ref(workload, scale, seed)
        key = _Key(name, scale, seed, self.l1_config)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
        if cached is not None:
            self._emit("trace_mem_hit")
            return cached
        digest = None
        if self.store is not None:
            digest = self.trace_key(name, scale, seed)
            stored = self.store.load_trace(digest)
            if stored is not None:
                self.store_hits += 1
                self._insert(key, stored)
                self._emit("trace_store_hit", digest=digest)
                self._check_result(key, digest, stored)
                return stored
        if instance is None:
            instance = get_workload(name, scale=scale, seed=seed)
        started = time.perf_counter()
        result = simulate_l1(
            instance, self.l1_config, keep_pcs=self.keep_pcs, engine=self.engine
        )
        computed_s = time.perf_counter() - started
        if self.store is not None:
            self.store.save_trace(digest, *result)
        self._insert(key, result)
        self._emit("trace_computed", digest=digest, duration_s=computed_s)
        self._check_result(key, digest, result)
        return result

    def _check_result(
        self,
        key: _Key,
        digest: Optional[str],
        result: Tuple[MissTrace, L1Summary],
    ) -> None:
        """``REPRO_CHECK=1`` consistency checks on a freshly produced entry."""
        if not _inv.ENABLED:
            return
        miss_trace, summary = result
        _inv.invariant(
            key.scale == canonical_scale(key.scale),
            "cache key scale %r is not canonical",
            key.scale,
        )
        _inv.invariant(
            miss_trace.block_bits == self.l1_config.block_bits,
            "miss trace block_bits %d != L1 config block_bits %d",
            miss_trace.block_bits,
            self.l1_config.block_bits,
        )
        _inv.invariant(
            miss_trace.n_misses == summary.misses,
            "miss trace carries %d demand misses but the L1 summary says %d",
            miss_trace.n_misses,
            summary.misses,
        )
        if digest is not None:
            _inv.invariant(
                digest == self.trace_key(key.workload, key.scale, key.seed),
                "store digest is not reproducible from the cache key",
            )

    def trace_key(self, workload: str, scale: float = 1.0, seed: int = 0) -> str:
        """The persistent-store digest this cache uses for a workload."""
        return trace_digest(workload, scale, seed, self.l1_config, self.keep_pcs)

    def _insert(self, key: _Key, value: Tuple[MissTrace, L1Summary]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def simulate_l1(
    workload: Workload,
    l1_config: Optional[CacheConfig] = None,
    keep_pcs: bool = False,
    engine: Optional[str] = None,
) -> Tuple[MissTrace, L1Summary]:
    """Run a workload's trace through the primary cache.

    With the default ``vector`` engine, data-only traces through a
    write-back write-allocate cache run through the batch engine of
    :mod:`repro.sim.vector` (set-local run collapse + residue replay,
    bit-identical to the scalar cache).  The scalar engine uses a single
    D-cache with exact consecutive-same-block compression (see
    :mod:`repro.trace.compress`); other write policies and traces
    containing instruction fetches simulate the raw trace.  Synthetic
    PCs are stripped unless ``keep_pcs`` (they are only needed by
    PC-indexed baselines and disable the L1 fast paths).
    """
    config = l1_config if l1_config is not None else CacheConfig.paper_l1()
    engine = resolve_engine(engine)
    started = time.perf_counter()
    with get_tracer().span("l1.simulate", workload=workload.name, engine=engine):
        result = _simulate_l1(workload, config, keep_pcs, engine)
    engine_registry().histogram(
        "engine_l1_sim_ms", "wall time of one L1 miss-trace simulation"
    ).observe(1e3 * (time.perf_counter() - started))
    return result


def _simulate_l1(
    workload: Workload, config: CacheConfig, keep_pcs: bool, engine: str = ENGINE_VECTOR
) -> Tuple[MissTrace, L1Summary]:
    trace = workload.trace()
    has_ifetch = trace.has_ifetch  # cached on the memoized trace instance
    if trace.has_pcs and not keep_pcs:
        trace = Trace(trace.addrs, trace.kinds)
    if has_ifetch:
        split = SplitL1(
            SplitL1Config(icache=replace(config, seed=config.seed + 1), dcache=config)
        )
        miss_trace = split.simulate(trace)
        summary = L1Summary.from_stats(
            split.stats,
            trace_length=len(trace),
            data_set_bytes=workload.data_set_bytes,
            ifetch_misses=split.icache.stats.misses,
        )
        return miss_trace, summary
    if engine == ENGINE_VECTOR:
        vectorized = vector_simulate_cache(config, trace)
        if vectorized is not None:
            miss_trace, stats = vectorized
            summary = L1Summary.from_stats(
                stats,
                trace_length=len(trace),
                data_set_bytes=workload.data_set_bytes,
            )
            return miss_trace, summary
    cache = Cache(config)
    if config.write_back and config.write_allocate:
        space = AddressSpace(block_size=config.block_size)
        compressed = compress_consecutive(trace, space)
        miss_trace = cache.simulate(
            compressed.trace, weights=compressed.weights, dirty=compressed.dirty
        )
    else:
        # Compression is only exact under write-back + write-allocate
        # (collapsed write hits generate no traffic); simulate raw.
        miss_trace = cache.simulate(trace)
    summary = L1Summary.from_stats(
        cache.stats,
        trace_length=len(trace),
        data_set_bytes=workload.data_set_bytes,
    )
    return miss_trace, summary


_DEFAULT_CACHE: Optional[MissTraceCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> MissTraceCache:
    """The shared module-level miss-trace cache (thread safe)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        with _DEFAULT_CACHE_LOCK:
            if _DEFAULT_CACHE is None:
                _DEFAULT_CACHE = MissTraceCache()
    return _DEFAULT_CACHE


def run_secondary(
    workload: Union[str, Workload],
    mechanism: MechanismConfig,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    engine: Optional[str] = None,
) -> MechStats:
    """Simulate any secondary mechanism over a workload's miss stream.

    The mechanism-generic dispatcher behind :func:`run_streams`: the
    cached miss trace replays through the mechanism described by
    ``mechanism`` (streams, victim cache, miss cache, or a hybrid stack)
    with engine dispatch handled by
    :func:`~repro.sim.vector.replay_secondary`.
    """
    cache = cache if cache is not None else default_cache()
    miss_trace, _ = cache.get(workload, scale=scale, seed=seed)
    return replay_secondary(mechanism, miss_trace, engine=engine)


def run_streams(
    workload: Union[str, Workload],
    config: StreamConfig,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    engine: Optional[str] = None,
) -> StreamStats:
    """Simulate one stream configuration over a workload's miss stream.

    Backward-compatible wrapper over :func:`run_secondary` for the
    ``streams`` mechanism.
    """
    stats = run_secondary(
        workload,
        MechanismConfig.for_streams(config),
        scale=scale,
        seed=seed,
        cache=cache,
        engine=engine,
    )
    assert stats.streams is not None
    return stats.streams


def run_result(
    workload: Union[str, Workload],
    config: StreamConfig,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> RunResult:
    """Like :func:`run_streams` but bundled with the L1 summary.

    The recorded provenance (workload/scale/seed) always reflects what
    was simulated: a :class:`Workload` instance's own parameters win over
    any conflicting ``scale``/``seed`` arguments, exactly as they do for
    the cache key (see :func:`resolve_workload_ref`).
    """
    cache = cache if cache is not None else default_cache()
    name, scale, seed, _ = resolve_workload_ref(workload, scale, seed)
    miss_trace, summary = cache.get(workload, scale=scale, seed=seed)
    stats = replay_streams(config, miss_trace)
    return RunResult(workload=name, scale=scale, seed=seed, l1=summary, streams=stats)
