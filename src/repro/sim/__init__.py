"""Simulation drivers: runners, sweeps and the L2 comparison."""

from repro.sim.compare import MatchResult, format_size, min_matching_l2_size
from repro.sim.parallel import (
    SweepExecutionError,
    SweepTask,
    TaskError,
    grid_stats,
    run_grid,
)
from repro.sim.replication import MetricSummary, replicate, summarize
from repro.sim.results import L1Summary, RunResult
from repro.sim.runner import (
    MissTraceCache,
    default_cache,
    resolve_workload_ref,
    run_result,
    run_streams,
    simulate_l1,
)
from repro.sim.sweep import (
    compare_configs,
    sweep_czone_bits,
    sweep_depth,
    sweep_n_streams,
)
from repro.sim.vector import (
    ENGINES,
    replay_streams,
    resolve_engine,
    vector_replay_streams,
    vector_simulate_cache,
    vector_simulate_secondary,
)
from repro.sim.system import MemorySystem, ServiceLevel, SystemStats

__all__ = [
    "ENGINES",
    "L1Summary",
    "MatchResult",
    "MemorySystem",
    "MetricSummary",
    "MissTraceCache",
    "RunResult",
    "ServiceLevel",
    "SweepExecutionError",
    "SweepTask",
    "SystemStats",
    "TaskError",
    "compare_configs",
    "default_cache",
    "format_size",
    "grid_stats",
    "min_matching_l2_size",
    "replay_streams",
    "replicate",
    "resolve_engine",
    "resolve_workload_ref",
    "run_grid",
    "run_result",
    "summarize",
    "run_streams",
    "simulate_l1",
    "sweep_czone_bits",
    "sweep_depth",
    "sweep_n_streams",
    "vector_replay_streams",
    "vector_simulate_cache",
    "vector_simulate_secondary",
]
