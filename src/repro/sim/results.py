"""Result records for simulation runs.

These dataclasses are the library's reporting currency: experiment
drivers return them, the table/figure renderers consume them, and they
serialise to plain dicts for logging.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict

from repro.caches.cache import CacheStats
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamStats

__all__ = ["L1Summary", "RunResult"]


@dataclass(frozen=True)
class L1Summary:
    """What the primary cache did to a workload's trace.

    Attributes:
        accesses: total processor references.
        misses: demand misses (the stream hit-rate denominator).
        writebacks: dirty evictions sent to memory.
        ifetch_misses: instruction-cache misses (0 for data-only traces).
        miss_rate: misses / accesses.
        trace_length: references in the generated trace.
        data_set_bytes: bytes allocated by the workload model.
    """

    accesses: int
    misses: int
    writebacks: int
    ifetch_misses: int
    miss_rate: float
    trace_length: int
    data_set_bytes: int

    @classmethod
    def from_stats(
        cls,
        stats: CacheStats,
        trace_length: int,
        data_set_bytes: int,
        ifetch_misses: int = 0,
    ) -> "L1Summary":
        return cls(
            accesses=stats.accesses,
            misses=stats.misses,
            writebacks=stats.writebacks,
            ifetch_misses=ifetch_misses,
            miss_rate=stats.miss_rate,
            trace_length=trace_length,
            data_set_bytes=data_set_bytes,
        )


@dataclass(frozen=True)
class RunResult:
    """One (workload, stream configuration) simulation outcome.

    ``wall_time_s``/``worker``/``source`` are execution provenance
    filled in by the sweep engine (:mod:`repro.sim.parallel`): how long
    the cell took, which process ran it, and whether the replay came
    from the persistent store (``"store"``) or was simulated
    (``"replayed"``).  They default to empty for results built outside
    the engine and are deliberately excluded from equality — two runs
    of the same cell are the *same result* however long they took.

    ``streams`` holds :class:`StreamStats` for stream cells and
    :class:`~repro.mechanisms.MechStats` for mechanism-generic cells —
    the two share the reporting surface this class touches
    (``stream_hits``, ``hit_rate_percent``, ``bandwidth``, ``config``).

    ``trace_id`` is the request trace the cell was executed under
    (:mod:`repro.obs.context`) — the same identifier tagged on the
    cell's spans and log records, so a result can be joined back to the
    exact timeline that produced it.  Empty for untraced work.
    """

    workload: str
    scale: float
    seed: int
    l1: L1Summary
    streams: "StreamStats"
    wall_time_s: float = field(default=0.0, compare=False)
    worker: int = field(default=0, compare=False)
    source: str = field(default="", compare=False)
    trace_id: str = field(default="", compare=False)

    @property
    def hit_rate_percent(self) -> float:
        """Stream hit rate over primary misses, percent (Figure 3's y-axis)."""
        return self.streams.hit_rate_percent

    @property
    def eb_percent(self) -> float:
        """Measured extra bandwidth, percent (Table 2 / Figure 5)."""
        return self.streams.bandwidth.eb_measured

    @property
    def config(self) -> StreamConfig:
        return self.streams.config

    def to_dict(self) -> Dict:
        """Flatten to plain types for logging/JSON."""
        return {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "l1": asdict(self.l1),
            "config": asdict(self.streams.config),
            "demand_misses": self.streams.demand_misses,
            "stream_hits": self.streams.stream_hits,
            "hit_rate_percent": self.hit_rate_percent,
            "eb_percent": self.eb_percent,
            "eb_estimate_percent": self.streams.bandwidth.eb_estimate,
            "prefetches_issued": self.streams.prefetches_issued,
            "prefetches_used": self.streams.prefetches_used,
            "allocations": self.streams.allocations,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "source": self.source,
            "trace_id": self.trace_id,
        }
