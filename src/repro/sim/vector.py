"""Vectorized batch replay engines (scalar/vector engine selector).

The scalar simulators in :mod:`repro.caches.cache` and
:mod:`repro.core.prefetcher` step access-by-access through Python loops;
profiling (``l1.simulate`` / ``stream.replay`` spans, BENCH_PR5) shows
those loops dominate every executed sweep cell.  This module rebuilds the
hot paths as batch engines that stay **bit-identical** to the scalar
code — same miss events in the same order, same statistics, same RNG
draws — so results are interchangeable and the differential harness can
prove equivalence (the ``vector`` stage of ``repro check``).

Design (see docs/vectorized.md for the full argument):

* **Set-local collapse (L1).**  An access is a *guaranteed hit* whenever
  the previous access to the same cache set touched the same block: no
  other block intervened in that set, so no replacement policy can have
  evicted it, and servicing it changes no replacement state (for LRU the
  block is already most-recent; hit-dirtiness is carried as a per-run
  flag).  The whole trace is segmented set-locally with numpy (stable
  argsort by set index, adjacent same-block comparison), collapsing
  70-95% of accesses on the paper's workloads.  Only the residue — the
  first access of each set-local run — is replayed through a tight
  per-policy Python loop that mirrors :meth:`Cache.simulate` exactly,
  including the shared-RNG victim draws of random replacement.  This is
  strictly stronger than the *globally* consecutive collapse of
  :func:`repro.trace.compress.compress_consecutive` and subsumes it.

* **Flat stream replay.**  With the paper's bank semantics (head-only
  lookup, ``min_lead`` 0, unit strides, unified lanes) a stream's FIFO is
  always the contiguous block window ``[next - depth, next)``, so the
  per-entry ``StreamEntry`` objects and per-stream list shuffling of
  :class:`StreamBufferBank` can be replaced by a few ints per stream plus
  one dict mapping head blocks to their multiplicity for O(1) miss
  detection.  Configurations outside that family (partitioned banks,
  ``lookup_depth`` > 1, latency model, stride detectors) fall back to the
  scalar prefetcher.

* **Sampled L2 probes.**  :func:`vector_simulate_secondary` applies the
  set-sampling filter as one vectorized mask (the scalar loop pays full
  loop cost even for skipped accesses) and then runs the same set-local
  collapse; only hit/miss membership matters for the L2's counters, so
  the residue loop is even leaner than L1's.

Engine choice: callers pass ``engine="scalar"|"vector"`` or leave it to
:func:`resolve_engine`, which reads the ``REPRO_ENGINE`` environment
variable (inherited by sweep worker processes) and defaults to
``vector``.  Under ``REPRO_CHECK=1`` the vector engines stand down in
favour of the scalar code so the per-operation runtime invariants keep
their coverage; the differ's ``vector`` stage drives the batch engines
directly (``force=True``) so they stay differentially tested even then.
"""

from __future__ import annotations

import os
import random
from collections import Counter, OrderedDict
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.caches.cache import CacheConfig, CacheStats, MissEventKind, MissTrace
from repro.caches.secondary import SecondaryResult
from repro.check import invariants as _inv
from repro.core.config import StreamConfig, StrideDetector
from repro.core.filters import UnitStrideFilter
from repro.core.lengths import StreamLengthHistogram, bucket_of
from repro.core.prefetcher import StreamPrefetcher, StreamStats
from repro.trace.events import AccessKind, Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.mechanisms import MechanismConfig, MechStats

__all__ = [
    "ENGINE_SCALAR",
    "ENGINE_VECTOR",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "resolve_engine",
    "cache_vector_supported",
    "vector_simulate_cache",
    "streams_vector_supported",
    "vector_replay_streams",
    "replay_streams",
    "replay_secondary",
    "secondary_vector_supported",
    "vector_simulate_secondary",
]

ENGINE_SCALAR = "scalar"
ENGINE_VECTOR = "vector"
ENGINES = (ENGINE_SCALAR, ENGINE_VECTOR)

#: Environment override for the default engine; sweep workers inherit it.
ENGINE_ENV_VAR = "REPRO_ENGINE"
DEFAULT_ENGINE = ENGINE_VECTOR

_WRITE = int(AccessKind.WRITE)
_WB = int(MissEventKind.WRITEBACK)
_IFETCH_MISS = int(MissEventKind.IFETCH_MISS)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine choice: explicit arg > ``REPRO_ENGINE`` > vector.

    Raises:
        ValueError: for an unknown engine name.
    """
    choice = engine if engine else os.environ.get(ENGINE_ENV_VAR, "") or DEFAULT_ENGINE
    if choice not in ENGINES:
        raise ValueError(f"unknown engine {choice!r}; expected one of {ENGINES}")
    return choice


# ---------------------------------------------------------------------------
# Shared set-local segmentation
# ---------------------------------------------------------------------------


def _collapse_set_local(
    blocks: np.ndarray, set_mask: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment a block stream into set-local same-block runs.

    Returns ``(kept, starts_sorted, order)`` where ``kept`` holds the
    original indices of each run's first access in original trace order,
    ``order`` is the stable set-grouping permutation and ``starts_sorted``
    the run starts within that permutation (for ``reduceat`` folds).
    Callers fold per-run payloads (dirtiness, demand counts) with
    :func:`_fold_runs`.
    """
    sets = blocks & set_mask
    if set_mask <= 0xFFFF:
        sets = sets.astype(np.uint16)
    order = np.argsort(sets, kind="stable")
    sorted_blocks = blocks[order]
    # Within one set's stable subsequence, an adjacent equal block means
    # the previous access to this set was the same block: a guaranteed
    # hit.  Across set boundaries blocks always differ (the set index is
    # a function of the block), so no mask on set equality is needed.
    dup = np.empty(len(sorted_blocks), dtype=bool)
    if len(dup):
        dup[0] = False
        np.equal(sorted_blocks[1:], sorted_blocks[:-1], out=dup[1:])
    starts_sorted = np.flatnonzero(~dup)
    kept = np.sort(order[starts_sorted])
    return kept, starts_sorted, order


def _fold_runs(
    payload_sorted: np.ndarray,
    starts_sorted: np.ndarray,
    order: np.ndarray,
    kept: np.ndarray,
    reducer,
) -> np.ndarray:
    """Reduce a per-access payload over set-local runs, in ``kept`` order."""
    per_run = reducer(payload_sorted, starts_sorted)
    full = np.empty(order.shape[0], dtype=per_run.dtype)
    full[order[starts_sorted]] = per_run
    return full[kept]


# ---------------------------------------------------------------------------
# L1 / generic set-associative cache
# ---------------------------------------------------------------------------


def cache_vector_supported(config: CacheConfig, trace: Trace) -> bool:
    """Can :func:`vector_simulate_cache` replace ``Cache.simulate`` here?

    The batch engine covers the dirty-collapse domain (write-back +
    write-allocate; see :mod:`repro.trace.compress`) for all three
    replacement policies.  PC-carrying traces keep the scalar path (miss
    events would need per-event PC tracking), as does ``REPRO_CHECK=1``
    so the per-access invariant hooks retain coverage.
    """
    return (
        config.write_back
        and config.write_allocate
        and config.policy in ("random", "lru", "fifo")
        and not trace.has_pcs
        and not _inv.ENABLED
    )


def vector_simulate_cache(
    config: CacheConfig, trace: Trace, force: bool = False
) -> Optional[Tuple[MissTrace, CacheStats]]:
    """Batch-simulate a set-associative cache over a raw trace.

    Bit-identical to feeding ``trace`` through
    :meth:`repro.caches.cache.Cache.simulate` (with the runner's
    compression applied for WB+WA): same miss/write-back event stream,
    same statistics, same RNG consumption for random replacement.

    Returns:
        ``(miss_trace, stats)``, or None when the configuration/trace is
        outside the engine's domain (``force`` only bypasses the
        ``REPRO_CHECK`` stand-down, for the differ's vector stage).
    """
    if not (
        config.write_back
        and config.write_allocate
        and config.policy in ("random", "lru", "fifo")
        and not trace.has_pcs
    ):
        return None
    if _inv.ENABLED and not force:
        return None

    n = len(trace)
    block_bits = config.block_bits
    if n == 0:
        return (
            MissTrace(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8), block_bits
            ),
            CacheStats(),
        )

    set_mask = config.n_sets - 1
    blocks = trace.addrs >> block_bits
    kept, starts_sorted, order = _collapse_set_local(blocks, set_mask)

    is_write = trace.kinds == _WRITE
    run_dirty = _fold_runs(
        is_write[order], starts_sorted, order, kept, np.logical_or.reduceat
    )
    kept_write = is_write[kept].view(np.uint8)
    # One small int per residue access: bit 0 = the miss-event kind
    # (READ_MISS=0 / WRITE_MISS=1 == is_write), bit 1 = run dirtiness.
    flag_col = (kept_write + 2 * (kept_write | run_dirty.view(np.uint8))).tolist()
    block_col = blocks[kept].tolist()
    addr_col = trace.addrs[kept].tolist()

    out_addrs: List[int] = []
    out_kinds: List[int] = []
    if config.policy == "random":
        _residue_random(
            config, set_mask, block_col, flag_col, addr_col, out_addrs, out_kinds
        )
    else:
        _residue_ordered(
            config, set_mask, block_col, flag_col, addr_col, out_addrs, out_kinds
        )

    kinds_arr = np.asarray(out_kinds, dtype=np.uint8)
    addrs_arr = np.asarray(out_addrs, dtype=np.int64)
    read_misses = int(np.count_nonzero(kinds_arr == int(MissEventKind.READ_MISS)))
    write_misses = int(np.count_nonzero(kinds_arr == int(MissEventKind.WRITE_MISS)))
    misses = read_misses + write_misses
    stats = CacheStats(
        accesses=n,
        hits=n - misses,
        misses=misses,
        read_misses=read_misses,
        write_misses=write_misses,
        writebacks=int(np.count_nonzero(kinds_arr == _WB)),
    )
    return MissTrace(addrs_arr, kinds_arr, block_bits), stats


def _residue_random(
    config: CacheConfig,
    set_mask: int,
    block_col: List[int],
    flag_col: List[int],
    addr_col: List[int],
    out_addrs: List[int],
    out_kinds: List[int],
) -> None:
    """Residue replay, random replacement (mirrors _simulate_fast_random).

    Blocks embed their set index, so one global residency dict stands in
    for the per-set dicts; victim draws consume ``Random(config.seed)``
    in the same order as the scalar cache.
    """
    assoc = config.assoc
    block_bits = config.block_bits
    rng = random.Random(config.seed)
    # randrange(assoc) is exactly _randbelow(assoc) for positive ints;
    # binding the inner method skips the argument-parsing wrapper.
    randbelow = getattr(rng, "_randbelow", None) or rng.randrange
    resident: dict = {}
    slots: List[List[int]] = [[] for _ in range(set_mask + 1)]
    append_addr = out_addrs.append
    append_kind = out_kinds.append
    wb_kind = _WB
    for block, flags, addr in zip(block_col, flag_col, addr_col):
        if block in resident:
            if flags > 1:
                resident[block] = 1
            continue
        append_addr(addr)
        append_kind(flags & 1)
        set_slots = slots[block & set_mask]
        if len(set_slots) >= assoc:
            slot = randbelow(assoc)
            victim = set_slots[slot]
            if resident.pop(victim):
                append_addr(victim << block_bits)
                append_kind(wb_kind)
            set_slots[slot] = block
        else:
            set_slots.append(block)
        resident[block] = flags >> 1


def _residue_ordered(
    config: CacheConfig,
    set_mask: int,
    block_col: List[int],
    flag_col: List[int],
    addr_col: List[int],
    out_addrs: List[int],
    out_kinds: List[int],
) -> None:
    """Residue replay for LRU/FIFO (mirrors the general scalar loop)."""
    assoc = config.assoc
    block_bits = config.block_bits
    lru = config.policy == "lru"
    sets: List["OrderedDict[int, int]"] = [
        OrderedDict() for _ in range(set_mask + 1)
    ]
    append_addr = out_addrs.append
    append_kind = out_kinds.append
    wb_kind = _WB
    for block, flags, addr in zip(block_col, flag_col, addr_col):
        entries = sets[block & set_mask]
        if block in entries:
            if lru:
                entries.move_to_end(block)
            if flags > 1:
                entries[block] = 1
            continue
        append_addr(addr)
        append_kind(flags & 1)
        if len(entries) >= assoc:
            victim, victim_dirty = entries.popitem(last=False)
            if victim_dirty:
                append_addr(victim << block_bits)
                append_kind(wb_kind)
        entries[block] = flags >> 1


# ---------------------------------------------------------------------------
# Stream-buffer replay
# ---------------------------------------------------------------------------


def streams_vector_supported(config: StreamConfig) -> bool:
    """Is ``config`` inside the flat engine's family?

    The flat engine models exactly the paper's bank: unified lanes,
    head-only comparison, zero-latency prefetches and unit strides (no
    stride detector), which keeps every stream's FIFO a contiguous block
    window.  Everything else falls back to the scalar prefetcher.
    """
    return (
        not config.partitioned
        and config.lookup_depth <= 1
        and config.min_lead == 0
        and config.stride_detector == StrideDetector.NONE
        and not _inv.ENABLED
    )


def vector_replay_streams(
    config: StreamConfig, miss_trace: MissTrace, force: bool = False
) -> Optional[StreamStats]:
    """Flat-state stream-buffer replay, bit-identical to the scalar run.

    Returns None when ``config`` needs the full scalar machinery
    (``force`` only bypasses the ``REPRO_CHECK`` stand-down).

    Raises:
        ValueError: on block-geometry mismatch, like the scalar run.
    """
    if not (
        not config.partitioned
        and config.lookup_depth <= 1
        and config.min_lead == 0
        and config.stride_detector == StrideDetector.NONE
    ):
        return None
    if _inv.ENABLED and not force:
        return None
    if miss_trace.block_bits != config.block_bits:
        raise ValueError(
            f"miss trace block_bits {miss_trace.block_bits} != "
            f"config block_bits {config.block_bits}"
        )

    kinds = miss_trace.kinds
    has_writebacks = miss_trace.has_writebacks
    n_events = len(miss_trace)
    wb_count = miss_trace.n_writebacks if has_writebacks else 0
    ifetch_count = (
        int(np.count_nonzero(kinds == _IFETCH_MISS))
        if miss_trace.has_ifetch_misses
        else 0
    )
    block_col = (miss_trace.addrs >> config.block_bits).tolist()

    n_streams = config.n_streams
    depth = config.depth
    unit_filter = (
        UnitStrideFilter(config.unit_filter_entries) if config.has_unit_filter else None
    )
    observe = unit_filter.observe if unit_filter is not None else None

    # Flat per-stream state: the FIFO of stream i is always the window
    # [nxt[i] - depth, nxt[i]) of block addresses, minus the blocks in
    # invs[i] (invalidated by write-backs).  heads[i] caches the head
    # block (None when invalid), and head_count is a multiset of the
    # valid head blocks so a bank miss is a single dict probe.
    nxt = [0] * n_streams
    active = [False] * n_streams
    hits_since = [0] * n_streams
    invs: List[Optional[set]] = [None] * n_streams
    heads: List[Optional[int]] = [None] * n_streams
    head_count: dict = {}
    lru_order = list(range(n_streams))

    hits = 0
    issued = 0
    used = 0
    allocations = 0
    invalidations = 0
    finished_lengths: List[int] = []

    head_count_get = head_count.get
    if has_writebacks:
        # Mixed stream: write-backs interleave with demand misses.
        for block, kind in zip(block_col, kinds.tolist()):
            if kind == _WB:
                # Invalidate stale copies in every stream window.
                for i in range(n_streams):
                    if active[i] and nxt[i] - depth <= block < nxt[i]:
                        inv = invs[i]
                        if inv is None:
                            inv = invs[i] = set()
                        elif block in inv:
                            continue
                        inv.add(block)
                        invalidations += 1
                        if heads[i] == block:
                            heads[i] = None
                            count = head_count[block]
                            if count == 1:
                                del head_count[block]
                            else:
                                head_count[block] = count - 1
                continue
            count = head_count_get(block)
            if count:
                # Head hit on the lowest-indexed matching stream, like
                # the scalar bank's heads.index scan.
                i = heads.index(block)
                hits += 1
                used += 1
                issued += 1  # the consumed head's replacement prefetch
                if count == 1:
                    del head_count[block]
                else:
                    head_count[block] = count - 1
                hits_since[i] += 1
                new_head = nxt[i] - depth + 1
                nxt[i] += 1
                inv = invs[i]
                if inv is not None and new_head in inv:
                    heads[i] = None
                else:
                    heads[i] = new_head
                    head_count[new_head] = head_count_get(new_head, 0) + 1
                lru_order.remove(i)
                lru_order.append(i)
                continue
            # Bank miss: the unit filter (if any) gates allocation.
            if observe is not None and not observe(block):
                continue
            i = lru_order.pop(0)
            if active[i]:
                finished_lengths.append(hits_since[i])
                old_head = heads[i]
                if old_head is not None:
                    count = head_count[old_head]
                    if count == 1:
                        del head_count[old_head]
                    else:
                        head_count[old_head] = count - 1
            active[i] = True
            hits_since[i] = 0
            invs[i] = None
            nxt[i] = block + 1 + depth
            heads[i] = block + 1
            head_count[block + 1] = head_count_get(block + 1, 0) + 1
            issued += depth
            allocations += 1
            lru_order.append(i)
    else:
        # Pure demand stream (ifetch misses included: the unified lane
        # treats them like data misses) — no per-event kind dispatch, and
        # no invalidations means the per-stream invalid sets stay empty.
        for block in block_col:
            count = head_count_get(block)
            if count:
                i = heads.index(block)
                hits += 1
                used += 1
                issued += 1
                if count == 1:
                    del head_count[block]
                else:
                    head_count[block] = count - 1
                hits_since[i] += 1
                new_head = nxt[i] - depth + 1
                nxt[i] += 1
                heads[i] = new_head
                head_count[new_head] = head_count_get(new_head, 0) + 1
                lru_order.remove(i)
                lru_order.append(i)
                continue
            if observe is not None and not observe(block):
                continue
            i = lru_order.pop(0)
            if active[i]:
                finished_lengths.append(hits_since[i])
                old_head = heads[i]
                if old_head is not None:
                    count = head_count[old_head]
                    if count == 1:
                        del head_count[old_head]
                    else:
                        head_count[old_head] = count - 1
            active[i] = True
            hits_since[i] = 0
            nxt[i] = block + 1 + depth
            heads[i] = block + 1
            head_count[block + 1] = head_count_get(block + 1, 0) + 1
            issued += depth
            allocations += 1
            lru_order.append(i)

    for i in range(n_streams):
        if active[i]:
            finished_lengths.append(hits_since[i])

    lengths = StreamLengthHistogram()
    # The histogram is a bag, so bulk-record distinct lengths at once.
    for length, times in Counter(finished_lengths).items():
        if length == 0:
            lengths.zero_length_streams += times
        else:
            bucket = bucket_of(length)
            lengths.hits_by_bucket[bucket] += length * times
            lengths.streams_by_bucket[bucket] += times

    return StreamStats(
        config=config,
        demand_misses=n_events - wb_count,
        stream_hits=hits,
        in_flight_matches=0,
        ifetch_misses=ifetch_count,
        writebacks=wb_count,
        invalidations=invalidations,
        prefetches_issued=issued,
        prefetches_used=used,
        allocations=allocations,
        unit_filter_hits=unit_filter.hits if unit_filter is not None else 0,
        unit_filter_misses=unit_filter.misses if unit_filter is not None else 0,
        detector_hits=0,
        lengths=lengths,
    )


def replay_streams(
    config: StreamConfig, miss_trace: MissTrace, engine: Optional[str] = None
) -> StreamStats:
    """Replay a miss trace through stream buffers with engine dispatch.

    The single entry point used by the runner, the parallel sweep workers
    and the Table 4 search: vector when selected and supported, scalar
    :class:`StreamPrefetcher` otherwise.
    """
    if resolve_engine(engine) == ENGINE_VECTOR:
        stats = vector_replay_streams(config, miss_trace)
        if stats is not None:
            return stats
    return StreamPrefetcher(config).run(miss_trace)


def replay_secondary(
    mechanism: "MechanismConfig", miss_trace: MissTrace, engine: Optional[str] = None
) -> "MechStats":
    """Replay a miss trace through any secondary mechanism.

    The mechanism-generic sibling of :func:`replay_streams` and the single
    entry point for the runner/sweep/compare layers.  Engine dispatch is
    best-effort and never errors on unsupported shapes:

    * ``streams`` delegates to :func:`replay_streams` (vector flat-window
      when selected and supported, scalar otherwise);
    * ``victim``/``misscache`` always run the scalar mechanism — the
      flat-window engine cannot represent their buffer state, so the
      vector engine simply stands down;
    * ``hybrid`` runs front members scalar via the two-phase residual
      composition and replays a trailing stream member with full engine
      dispatch, so ``REPRO_ENGINE=vector`` + a hybrid config is served
      (vector where possible, scalar elsewhere) rather than rejected.
    """
    from repro.mechanisms import build_mechanism
    from repro.mechanisms.hybrid import combine_member_stats
    from repro.mechanisms.streams import mech_stats_from_streams

    if mechanism.kind == "streams":
        assert mechanism.streams is not None
        return mech_stats_from_streams(
            mechanism, replay_streams(mechanism.streams, miss_trace, engine=engine)
        )
    if mechanism.kind == "hybrid":
        member_stats = []
        residual = miss_trace
        last = len(mechanism.members) - 1
        for i, member in enumerate(mechanism.members):
            if i == last:
                member_stats.append(replay_secondary(member, residual, engine=engine))
            else:
                stats, residual = build_mechanism(member).run_filter(residual)
                member_stats.append(stats)
        return combine_member_stats(mechanism, member_stats)
    return build_mechanism(mechanism).run(miss_trace)


# ---------------------------------------------------------------------------
# Sampled secondary-cache probes
# ---------------------------------------------------------------------------


def secondary_vector_supported(config: CacheConfig) -> bool:
    """Can the batch engine answer :func:`simulate_secondary` queries?"""
    return (
        config.write_back
        and config.write_allocate
        and config.policy in ("random", "lru", "fifo")
        and not _inv.ENABLED
    )


def vector_simulate_secondary(
    miss_trace: MissTrace,
    config: CacheConfig,
    sample_every: int = 1,
    force: bool = False,
) -> Optional[SecondaryResult]:
    """Batch equivalent of :func:`repro.caches.secondary.simulate_secondary`.

    The set-sampling filter becomes one vectorized mask (the scalar loop
    still pays per-event dispatch for skipped accesses), then the same
    set-local collapse as the L1 engine resolves guaranteed hits.  Only
    residency matters for the L2 counters — dirty state never surfaces in
    a :class:`SecondaryResult` — so the residue loop tracks membership
    and recency only.  RNG draws for random replacement match the scalar
    cache's order exactly.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    if not (
        config.write_back
        and config.write_allocate
        and config.policy in ("random", "lru", "fifo")
    ):
        return None
    if _inv.ENABLED and not force:
        return None

    block_bits = config.block_bits
    set_mask = config.n_sets - 1
    blocks = miss_trace.addrs >> block_bits
    kinds = miss_trace.kinds
    if sample_every > 1:
        sampled = ((blocks & set_mask) % sample_every) == 0
        blocks = blocks[sampled]
        kinds = kinds[sampled]

    is_demand = kinds != _WB
    demand_total = int(np.count_nonzero(is_demand))
    wb_total = int(kinds.shape[0]) - demand_total
    n_sets = config.n_sets
    sampled_sets = (
        (n_sets + sample_every - 1) // sample_every if sample_every > 1 else n_sets
    )

    hits = 0
    if blocks.shape[0]:
        kept, starts_sorted, order = _collapse_set_local(blocks, set_mask)
        demand_per_run = _fold_runs(
            is_demand[order].astype(np.int64), starts_sorted, order, kept, np.add.reduceat
        )
        block_col = blocks[kept].tolist()
        demand_col = demand_per_run.tolist()
        first_demand_col = is_demand[kept].view(np.uint8).tolist()
        assoc = config.assoc
        if config.policy == "random":
            rng = random.Random(config.seed)
            randbelow = getattr(rng, "_randbelow", None) or rng.randrange
            resident: set = set()
            slots: List[List[int]] = [[] for _ in range(n_sets)]
            for block, run_demand, first_demand in zip(
                block_col, demand_col, first_demand_col
            ):
                if block in resident:
                    hits += run_demand
                    continue
                hits += run_demand - first_demand
                set_slots = slots[block & set_mask]
                if len(set_slots) >= assoc:
                    slot = randbelow(assoc)
                    resident.discard(set_slots[slot])
                    set_slots[slot] = block
                else:
                    set_slots.append(block)
                resident.add(block)
        else:
            is_lru = config.policy == "lru"
            sets: List["OrderedDict[int, None]"] = [
                OrderedDict() for _ in range(n_sets)
            ]
            for block, run_demand, first_demand in zip(
                block_col, demand_col, first_demand_col
            ):
                entries = sets[block & set_mask]
                if block in entries:
                    hits += run_demand
                    if is_lru:
                        entries.move_to_end(block)
                    continue
                hits += run_demand - first_demand
                if len(entries) >= assoc:
                    entries.popitem(last=False)
                entries[block] = None

    return SecondaryResult(
        config=config,
        demand_accesses=demand_total,
        demand_hits=hits,
        writebacks_received=wb_total,
        sampled_sets=sampled_sets,
    )
