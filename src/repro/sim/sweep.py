"""Parameter sweeps over cached miss traces.

Each sweep replays the same miss trace under a family of stream
configurations — the paper's Figure 3 (stream count), Figure 5 (filter
on/off), Figure 8 (stride detector on/off) and Figure 9 (czone size) are
all instances.

All sweeps execute through :mod:`repro.sim.parallel`: pass ``jobs=N`` to
fan the grid out over worker processes and ``store=`` a
:class:`~repro.trace.store.TraceStore` to reuse L1 simulations and
replay results across processes and sessions.  Serial (``jobs=1``) and
parallel execution produce bit-identical statistics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.config import StreamConfig, StrideDetector
from repro.core.prefetcher import StreamStats
from repro.mechanisms import MechanismConfig, MechStats
from repro.sim.parallel import SweepTask, grid_stats
from repro.sim.runner import MissTraceCache, default_cache
from repro.trace.store import TraceStore
from repro.workloads.base import Workload

__all__ = [
    "sweep_n_streams",
    "sweep_czone_bits",
    "sweep_depth",
    "compare_configs",
    "sweep_mechanisms",
]

WorkloadRef = Union[str, Workload]


def sweep_n_streams(
    workload: WorkloadRef,
    n_streams_values: Sequence[int] = tuple(range(1, 11)),
    base: Optional[StreamConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional[TraceStore] = None,
) -> Dict[int, StreamStats]:
    """Hit rate vs number of streams (Figure 3's x-axis)."""
    base = base if base is not None else StreamConfig.jouppi()
    cache = cache if cache is not None else default_cache()
    tasks = [
        SweepTask(key=n, workload=workload, config=base.with_(n_streams=n),
                  scale=scale, seed=seed)
        for n in n_streams_values
    ]
    return grid_stats(tasks, jobs=jobs, cache=cache, store=store)


def sweep_czone_bits(
    workload: WorkloadRef,
    czone_bits_values: Sequence[int] = tuple(range(10, 27, 2)),
    base: Optional[StreamConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional[TraceStore] = None,
) -> Dict[int, StreamStats]:
    """Hit rate vs concentration-zone size (Figure 9)."""
    base = base if base is not None else StreamConfig.non_unit()
    if base.stride_detector != StrideDetector.CZONE:
        raise ValueError("sweep_czone_bits requires a czone-detector base config")
    cache = cache if cache is not None else default_cache()
    tasks = [
        SweepTask(key=bits, workload=workload, config=base.with_(czone_bits=bits),
                  scale=scale, seed=seed)
        for bits in czone_bits_values
    ]
    return grid_stats(tasks, jobs=jobs, cache=cache, store=store)


def sweep_depth(
    workload: WorkloadRef,
    depth_values: Sequence[int] = (1, 2, 3, 4, 6, 8),
    base: Optional[StreamConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional[TraceStore] = None,
) -> Dict[int, StreamStats]:
    """Hit rate / EB vs stream depth (the paper fixes depth=2; ablation)."""
    base = base if base is not None else StreamConfig.jouppi()
    cache = cache if cache is not None else default_cache()
    tasks = [
        SweepTask(key=depth, workload=workload, config=base.with_(depth=depth),
                  scale=scale, seed=seed)
        for depth in depth_values
    ]
    return grid_stats(tasks, jobs=jobs, cache=cache, store=store)


def sweep_mechanisms(
    workload: WorkloadRef,
    mechanisms: Dict[str, MechanismConfig],
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional[TraceStore] = None,
) -> Dict[str, MechStats]:
    """Run several named secondary mechanisms over one miss trace.

    The mechanism-zoo sibling of :func:`compare_configs`: each cell
    replays the same cached miss trace through a different
    :class:`~repro.mechanisms.MechanismConfig` (streams, victim cache,
    miss cache, or a hybrid stack), via the same store-memoised grid
    engine.
    """
    cache = cache if cache is not None else default_cache()
    tasks = [
        SweepTask(key=label, workload=workload, config=mech, scale=scale, seed=seed)
        for label, mech in mechanisms.items()
    ]
    return grid_stats(tasks, jobs=jobs, cache=cache, store=store)


def compare_configs(
    workload: WorkloadRef,
    configs: Dict[str, StreamConfig],
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional[TraceStore] = None,
) -> Dict[str, StreamStats]:
    """Run several named configurations over one miss trace."""
    cache = cache if cache is not None else default_cache()
    tasks = [
        SweepTask(key=label, workload=workload, config=config, scale=scale, seed=seed)
        for label, config in configs.items()
    ]
    return grid_stats(tasks, jobs=jobs, cache=cache, store=store)
