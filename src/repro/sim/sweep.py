"""Parameter sweeps over cached miss traces.

Each sweep replays the same miss trace under a family of stream
configurations — the paper's Figure 3 (stream count), Figure 5 (filter
on/off), Figure 8 (stride detector on/off) and Figure 9 (czone size) are
all instances.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.config import StreamConfig, StrideDetector
from repro.sim.runner import MissTraceCache, default_cache, run_streams
from repro.core.prefetcher import StreamStats
from repro.workloads.base import Workload

__all__ = [
    "sweep_n_streams",
    "sweep_czone_bits",
    "sweep_depth",
    "compare_configs",
]

WorkloadRef = Union[str, Workload]


def sweep_n_streams(
    workload: WorkloadRef,
    n_streams_values: Sequence[int] = tuple(range(1, 11)),
    base: Optional[StreamConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> Dict[int, StreamStats]:
    """Hit rate vs number of streams (Figure 3's x-axis)."""
    base = base if base is not None else StreamConfig.jouppi()
    cache = cache if cache is not None else default_cache()
    results = {}
    for n in n_streams_values:
        config = base.with_(n_streams=n)
        results[n] = run_streams(workload, config, scale=scale, seed=seed, cache=cache)
    return results


def sweep_czone_bits(
    workload: WorkloadRef,
    czone_bits_values: Sequence[int] = tuple(range(10, 27, 2)),
    base: Optional[StreamConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> Dict[int, StreamStats]:
    """Hit rate vs concentration-zone size (Figure 9)."""
    base = base if base is not None else StreamConfig.non_unit()
    if base.stride_detector != StrideDetector.CZONE:
        raise ValueError("sweep_czone_bits requires a czone-detector base config")
    cache = cache if cache is not None else default_cache()
    results = {}
    for bits in czone_bits_values:
        config = base.with_(czone_bits=bits)
        results[bits] = run_streams(workload, config, scale=scale, seed=seed, cache=cache)
    return results


def sweep_depth(
    workload: WorkloadRef,
    depth_values: Sequence[int] = (1, 2, 3, 4, 6, 8),
    base: Optional[StreamConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> Dict[int, StreamStats]:
    """Hit rate / EB vs stream depth (the paper fixes depth=2; ablation)."""
    base = base if base is not None else StreamConfig.jouppi()
    cache = cache if cache is not None else default_cache()
    results = {}
    for depth in depth_values:
        config = base.with_(depth=depth)
        results[depth] = run_streams(workload, config, scale=scale, seed=seed, cache=cache)
    return results


def compare_configs(
    workload: WorkloadRef,
    configs: Dict[str, StreamConfig],
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
) -> Dict[str, StreamStats]:
    """Run several named configurations over one miss trace."""
    cache = cache if cache is not None else default_cache()
    return {
        label: run_streams(workload, config, scale=scale, seed=seed, cache=cache)
        for label, config in configs.items()
    }
