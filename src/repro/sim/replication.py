"""Multi-seed replication of experiments.

The workload models are randomised (gather targets, sparsity patterns,
cluster placement) and the L1 uses random replacement, so any single
number carries seed noise.  This module reruns a configuration across
seeds and summarises the spread — used by EXPERIMENTS.md to show the
reported shapes are not one-seed accidents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import StreamConfig
from repro.sim.parallel import SweepTask, TaskError, SweepExecutionError, run_grid
from repro.sim.results import RunResult
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

__all__ = ["MetricSummary", "replicate", "summarize"]


@dataclass(frozen=True)
class MetricSummary:
    """Spread of one metric across replicated runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @property
    def spread(self) -> float:
        """Max minus min."""
        return self.maximum - self.minimum

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f} (n={self.n})"


def summarize(values: Sequence[float]) -> MetricSummary:
    """Mean/std/min/max of a sample (population std; n >= 1).

    Raises:
        ValueError: on an empty sample.
    """
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return MetricSummary(
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        n=n,
    )


def replicate(
    workload: str,
    config: StreamConfig,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    scale: float = 1.0,
    cache: Optional[MissTraceCache] = None,
    jobs: int = 1,
    store: Optional[TraceStore] = None,
) -> Tuple[List[RunResult], Dict[str, MetricSummary]]:
    """Run one configuration across several workload seeds.

    Returns the individual results and summaries of the headline
    metrics (``hit_pct``, ``eb_pct``, ``l1_miss_rate_pct``).

    Note each seed pays its own L1 simulation (different addresses) —
    exactly the case ``jobs > 1`` parallelises and a ``store`` memoises
    across sessions.

    Raises:
        SweepExecutionError: if any seed's simulation failed.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    cache = cache if cache is not None else MissTraceCache()
    tasks = [
        SweepTask(key=seed, workload=workload, config=config, scale=scale, seed=seed)
        for seed in seeds
    ]
    results = run_grid(tasks, jobs=jobs, cache=cache, store=store)
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        raise SweepExecutionError(errors)
    summaries = {
        "hit_pct": summarize([r.hit_rate_percent for r in results]),
        "eb_pct": summarize([r.eb_percent for r in results]),
        "l1_miss_rate_pct": summarize([100 * r.l1.miss_rate for r in results]),
    }
    return results, summaries
