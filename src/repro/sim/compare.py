"""Streams versus secondary caches (paper Section 8 / Table 4).

For a workload at a given input scale, find the minimum secondary cache
capacity whose best-configuration local hit rate (associativity 1-4,
block 64/128B) matches the stream buffers' hit rate.  Set sampling keeps
the multi-megabyte configurations affordable, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.caches.sampling import SamplingPlan, sampled_hit_rate
from repro.caches.secondary import PAPER_L2_SIZES, candidate_configs
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamStats
from repro.sim.runner import MissTraceCache, default_cache, resolve_workload_ref
from repro.core.prefetcher import StreamPrefetcher
from repro.workloads.base import Workload

__all__ = ["MatchResult", "min_matching_l2_size", "format_size"]

WorkloadRef = Union[str, Workload]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of the Table 4 search for one (workload, scale) cell.

    Attributes:
        workload: benchmark name.
        scale: input scale used.
        stream_stats: the stream run being matched.
        matched_size: smallest L2 capacity reaching the stream hit rate,
            or None if even the largest candidate fell short.
        l2_hit_rates: best local hit rate at each candidate size.
    """

    workload: str
    scale: float
    stream_stats: StreamStats
    matched_size: Optional[int]
    l2_hit_rates: Tuple[Tuple[int, float], ...]

    @property
    def stream_hit_rate_percent(self) -> float:
        return self.stream_stats.hit_rate_percent


def min_matching_l2_size(
    workload: WorkloadRef,
    scale: float = 1.0,
    seed: int = 0,
    stream_config: Optional[StreamConfig] = None,
    sizes: Sequence[int] = PAPER_L2_SIZES,
    sampling: SamplingPlan = SamplingPlan(sample_every=8),
    cache: Optional[MissTraceCache] = None,
) -> MatchResult:
    """Find the minimum L2 size matching the stream hit rate.

    The default stream configuration is the paper's Table 4 setup: ten
    streams, a 16-entry unit filter backed by a 16-entry non-unit stride
    filter.
    """
    cache = cache if cache is not None else default_cache()
    config = stream_config if stream_config is not None else StreamConfig.non_unit()
    # Provenance must match the simulation: an instance's own scale wins.
    name, scale, seed, _ = resolve_workload_ref(workload, scale, seed)
    miss_trace, _ = cache.get(workload, scale=scale, seed=seed)
    stream_stats = StreamPrefetcher(config).run(miss_trace)
    target = stream_stats.hit_rate

    rates = []
    matched: Optional[int] = None
    for size in sorted(sizes):
        best = 0.0
        for l2_config in candidate_configs(size):
            result = sampled_hit_rate(miss_trace, l2_config, sampling)
            best = max(best, result.local_hit_rate)
        rates.append((size, best))
        if matched is None and best >= target:
            matched = size
            # Larger sizes can only do better; stop early but record the
            # point so the series is monotone up to the match.
            break
    return MatchResult(
        workload=name,
        scale=scale,
        stream_stats=stream_stats,
        matched_size=matched,
        l2_hit_rates=tuple(rates),
    )


def format_size(size_bytes: Optional[int]) -> str:
    """Render a capacity the way Table 4 does (``512 KB``, ``2 MB``)."""
    if size_bytes is None:
        return ">4 MB"
    if size_bytes >= 1 << 20:
        value = size_bytes / (1 << 20)
        return f"{value:g} MB"
    return f"{size_bytes // 1024} KB"
