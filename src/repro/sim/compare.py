"""Streams versus secondary caches (paper Section 8 / Table 4).

For a workload at a given input scale, find the minimum secondary cache
capacity whose best-configuration local hit rate (associativity 1-4,
block 64/128B) matches the stream buffers' hit rate.  Set sampling keeps
the multi-megabyte configurations affordable, as in the paper.

The search exploits that the best-config hit rate is monotone
non-decreasing in capacity (more sets of the same geometry can only keep
more of the working set): instead of simulating every size in ascending
order, :func:`min_matching_l2_size` binary-searches the size ladder and
each probed size stops at the first configuration reaching the target.
``MatchResult.l2_hit_rates`` records the probed sizes only, each with the
(assoc, block) provenance of its best configuration.

:mod:`repro.analytic.screen` layers a stack-distance fast path on the
same probe helper, pruning most sizes without any simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.caches.sampling import SamplingPlan, sampled_hit_rate
from repro.caches.secondary import PAPER_L2_SIZES, candidate_configs
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamStats
from repro.mechanisms import MechanismConfig, mechanism_label
from repro.obs.metrics import engine_registry
from repro.obs.spans import get_tracer
from repro.sim.runner import MissTraceCache, default_cache, resolve_workload_ref
from repro.sim.vector import replay_secondary, replay_streams
from repro.workloads.base import Workload

__all__ = [
    "SizePoint",
    "MatchResult",
    "StreamSweepCell",
    "min_matching_l2_size",
    "analytic_stream_sweep",
    "probe_size",
    "search_min_match",
    "format_size",
]

WorkloadRef = Union[str, Workload]


class SizePoint(NamedTuple):
    """Best probed configuration at one candidate L2 size.

    Attributes:
        size: L2 capacity in bytes.
        hit_rate: best local hit rate observed at this size (the probe
            stops at the first configuration reaching the target, so
            this is the match witness, not necessarily the grid optimum).
        assoc: associativity of that best configuration.
        block_size: block size of that best configuration.
    """

    size: int
    hit_rate: float
    assoc: int
    block_size: int


@dataclass(frozen=True)
class MatchResult:
    """Outcome of the Table 4 search for one (workload, scale) cell.

    Attributes:
        workload: benchmark name.
        scale: input scale used.
        stream_stats: the secondary-mechanism run being matched — a
            :class:`StreamStats` for the default stream search, a
            :class:`~repro.mechanisms.MechStats` for any other mechanism.
        mechanism: label of the mechanism that produced the match target
            (:func:`~repro.mechanisms.mechanism_label`), ``"streams"``
            historically and by default.  Recorded explicitly so
            manifests and exhibits stay unambiguous now that several
            mechanisms can be searched.
        matched_size: smallest L2 capacity reaching the mechanism hit
            rate, or None if even the largest candidate fell short.
        l2_hit_rates: per-size best probe results, ascending by size.
            Only sizes the search actually simulated appear.
        configs_simulated: L2 configurations simulated during the search.
        method: ``"simulated"`` (pure binary search) or ``"analytic"``
            (stack-distance screen, :mod:`repro.analytic.screen`).
        analytic_estimates: ``(size, estimate)`` pairs from the analytic
            screen; empty for the pure-simulation path.
        sizes_pruned: ladder sizes the analytic screen rejected as
            certain misses without simulating (0 for the pure path).
        probe_seconds: wall time spent inside :func:`probe_size` across
            the whole search.  Excluded from equality, like the
            provenance fields on :class:`~repro.sim.results.RunResult`.
    """

    workload: str
    scale: float
    stream_stats: StreamStats
    matched_size: Optional[int]
    l2_hit_rates: Tuple[SizePoint, ...]
    configs_simulated: int = 0
    method: str = "simulated"
    analytic_estimates: Tuple[Tuple[int, float], ...] = field(default=())
    sizes_pruned: int = 0
    probe_seconds: float = field(default=0.0, compare=False)
    mechanism: str = "streams"

    @property
    def stream_hit_rate_percent(self) -> float:
        return self.stream_stats.hit_rate_percent


def probe_size(
    miss_trace,
    size: int,
    sampling: SamplingPlan,
    target: float,
) -> Tuple[SizePoint, int]:
    """Simulate one candidate size's grid, stopping at the first match.

    Configurations are visited in the fixed :func:`candidate_configs`
    order (assoc ascending x block ascending) and the probe early-exits
    at the first hit rate reaching ``target`` — a deterministic witness,
    so any two searches probing the same size see identical results.

    Returns:
        ``(best point, configurations simulated)``.
    """
    best_rate = 0.0
    best_config = None
    simulated = 0
    with get_tracer().span("l2.probe", size=size):
        for config in candidate_configs(size):
            simulated += 1
            rate = sampled_hit_rate(miss_trace, config, sampling).local_hit_rate
            if best_config is None or rate > best_rate:
                best_rate, best_config = rate, config
            if rate >= target:
                break
    engine_registry().counter(
        "engine_l2_configs_simulated_total", "secondary-cache configurations simulated"
    ).inc(simulated)
    assert best_config is not None  # candidate_configs never returns an empty grid
    return (
        SizePoint(
            size=size,
            hit_rate=best_rate,
            assoc=best_config.assoc,
            block_size=best_config.block_size,
        ),
        simulated,
    )


def search_min_match(
    n_sizes: int,
    decide: Callable[[int], bool],
    guess: Optional[int] = None,
) -> Optional[int]:
    """Lower-bound search over a monotone match predicate.

    Args:
        n_sizes: ladder length; indices ``0 .. n_sizes-1`` ascend in size.
        decide: ``decide(i)`` — does the size at index ``i`` reach the
            target?  Must be monotone (False below some boundary, True
            at and above it) for the result to be the true minimum.
        guess: optional index to probe first (an analytic screen's
            predicted boundary).  After each probe the next guess is the
            adjacent boundary candidate, so a correct prediction resolves
            in two probes; a wrong one degrades gracefully toward plain
            binary search.

    Returns:
        Index of the smallest matching size, or None when nothing
        matches.
    """
    guided = guess is not None
    left, right = 0, n_sizes
    while left < right:
        if guided and guess is not None and left <= guess < right:
            mid = guess
        else:
            mid = (left + right) // 2
        if decide(mid):
            right = mid
            guess = mid - 1
        else:
            left = mid + 1
            guess = mid + 1
    return left if left < n_sizes else None


def min_matching_l2_size(
    workload: WorkloadRef,
    scale: float = 1.0,
    seed: int = 0,
    stream_config: Optional[StreamConfig] = None,
    sizes: Sequence[int] = PAPER_L2_SIZES,
    sampling: SamplingPlan = SamplingPlan(sample_every=8),
    cache: Optional[MissTraceCache] = None,
    mechanism: Optional[MechanismConfig] = None,
) -> MatchResult:
    """Find the minimum L2 size matching a secondary mechanism's hit rate.

    The default is the paper's Table 4 setup: ten streams, a 16-entry
    unit filter backed by a 16-entry non-unit stride filter.  Passing
    ``mechanism`` searches against any other secondary mechanism (victim
    cache, miss cache, hybrid stack); ``stream_config`` remains the
    backward-compatible spelling of the streams case and may not be
    combined with it.  The size ladder is binary-searched (see the module
    docstring), so only O(log n) of the candidate sizes are simulated.
    """
    if mechanism is not None and stream_config is not None:
        raise ValueError("pass either stream_config or mechanism, not both")
    cache = cache if cache is not None else default_cache()
    # Provenance must match the simulation: an instance's own scale wins.
    name, scale, seed, _ = resolve_workload_ref(workload, scale, seed)
    miss_trace, _ = cache.get(workload, scale=scale, seed=seed)
    if mechanism is not None and mechanism.kind != "streams":
        mech_stats = replay_secondary(mechanism, miss_trace)
        stream_stats = mech_stats
        label = mechanism_label(mechanism)
    else:
        if mechanism is not None:
            config = mechanism.streams
        else:
            config = (
                stream_config if stream_config is not None else StreamConfig.non_unit()
            )
        stream_stats = replay_streams(config, miss_trace)
        label = "streams"
    target = stream_stats.hit_rate

    sizes_sorted = sorted(sizes)
    points: List[SizePoint] = []
    counter = [0]
    probe_clock = [0.0]

    def decide(index: int) -> bool:
        started = time.perf_counter()
        point, simulated = probe_size(miss_trace, sizes_sorted[index], sampling, target)
        probe_clock[0] += time.perf_counter() - started
        points.append(point)
        counter[0] += simulated
        return point.hit_rate >= target

    matched_index = search_min_match(len(sizes_sorted), decide)
    return MatchResult(
        workload=name,
        scale=scale,
        stream_stats=stream_stats,
        matched_size=None if matched_index is None else sizes_sorted[matched_index],
        l2_hit_rates=tuple(sorted(points)),
        configs_simulated=counter[0],
        method="simulated",
        probe_seconds=probe_clock[0],
        mechanism=label,
    )


@dataclass(frozen=True)
class StreamSweepCell:
    """One configuration cell of an analytic stream sweep.

    Attributes:
        config: the envelope-coerced configuration evaluated.
        predicted_hit_rate: the closed-form model's stream hit rate.
        bound: the prediction's declared absolute error bound.
        eb_estimate: modeled extra-bandwidth estimate (percent of
            demand misses, Table 2/3 units).
        simulated_hit_rate: real replayed hit rate when this cell was
            witnessed, else None.
        within_bound: for witnessed cells, whether the replay landed
            inside the declared bound; vacuously True otherwise.
    """

    config: StreamConfig
    predicted_hit_rate: float
    bound: float
    eb_estimate: float
    simulated_hit_rate: Optional[float] = None

    @property
    def witnessed(self) -> bool:
        return self.simulated_hit_rate is not None

    @property
    def within_bound(self) -> bool:
        if self.simulated_hit_rate is None:
            return True
        return abs(self.simulated_hit_rate - self.predicted_hit_rate) <= self.bound


def analytic_stream_sweep(
    workload: WorkloadRef,
    configs: dict,
    scale: float = 1.0,
    seed: int = 0,
    cache: Optional[MissTraceCache] = None,
    witness: str = "best",
) -> dict:
    """Predict a stream-configuration sweep from one spectrum pass.

    The replay-based sweeps (:mod:`repro.sim.sweep`) simulate every
    cell; this path extracts the miss spectrum once (cached in the
    :class:`~repro.trace.store.TraceStore` under the trace digest) and
    evaluates every cell with the closed-form model of
    :mod:`repro.analytic.streams`.  Like the Table 4 screen, predictions
    never stand alone: the ``witness`` policy picks cells to replay for
    real and :meth:`StreamSweepCell.within_bound` records whether the
    replay landed inside each prediction's declared error bound.

    Args:
        workload: registry name or instance (same resolution as
            :func:`min_matching_l2_size`).
        configs: ``{key: StreamConfig}`` cells, e.g. a Figure 3
            ``n_streams`` ladder.  Each config is coerced onto the model
            envelope via :func:`~repro.analytic.streams.stream_envelope_config`.
        witness: ``"best"`` replays the cell with the highest predicted
            hit rate (the one a consumer would report), ``"all"`` replays
            every cell, ``"none"`` replays nothing (pure prediction).

    Returns:
        ``{key: StreamSweepCell}`` in the input order.

    Raises:
        RuntimeError: when a witnessed cell's replayed hit rate falls
            outside the prediction's declared bound — the model's
            contract is broken and no cell should be trusted.
    """
    from repro.analytic.streams import (
        ensure_spectrum,
        predict_streams,
        stream_envelope_config,
    )
    from repro.sim.runner import resolve_workload_ref

    if witness not in ("best", "all", "none"):
        raise ValueError(f"unknown witness policy {witness!r}")
    cache = cache if cache is not None else default_cache()
    name, scale, seed, _ = resolve_workload_ref(workload, scale, seed)
    miss_trace, _ = cache.get(workload, scale=scale, seed=seed)
    digest = None
    if cache.store is not None:
        digest = cache.trace_key(name, scale, seed)
    spectrum = ensure_spectrum(miss_trace, store=cache.store, digest=digest)

    predictions = {
        key: predict_streams(spectrum, stream_envelope_config(config))
        for key, config in configs.items()
    }
    witness_keys: List = []
    if witness == "all":
        witness_keys = list(predictions)
    elif witness == "best" and predictions:
        witness_keys = [max(predictions, key=lambda k: predictions[k].hit_rate)]

    cells = {}
    for key, prediction in predictions.items():
        simulated = None
        if key in witness_keys:
            with get_tracer().span("streams.witness", key=str(key)):
                simulated = replay_streams(prediction.config, miss_trace).hit_rate
        cell = StreamSweepCell(
            config=prediction.config,
            predicted_hit_rate=prediction.hit_rate,
            bound=prediction.bound,
            eb_estimate=prediction.eb_estimate,
            simulated_hit_rate=simulated,
        )
        if not cell.within_bound:
            raise RuntimeError(
                f"analytic stream sweep witness out of bound at {key!r}: "
                f"predicted {cell.predicted_hit_rate:.6f} +/- {cell.bound:.6f}, "
                f"replayed {simulated:.6f} ({name}@{scale})"
            )
        cells[key] = cell
    return cells


def format_size(size_bytes: Optional[int]) -> str:
    """Render a capacity the way Table 4 does (``512 KB``, ``2 MB``)."""
    if size_bytes is None:
        return ">4 MB"
    if size_bytes >= 1 << 20:
        value = size_bytes / (1 << 20)
        return f"{value:g} MB"
    return f"{size_bytes // 1024} KB"
