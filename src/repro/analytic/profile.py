"""Single-pass locality profiling of L1 miss traces.

One pass over a :class:`~repro.caches.cache.MissTrace` yields, per L2
block size, the exact LRU stack-distance histogram of the demand stream —
split by read/write — plus the cold-access and write-back counts.  From a
:class:`LocalityProfile` the hit rate of *every* fully-associative LRU
capacity follows by a prefix sum (Mattson's result), and the
set-associative estimator in :mod:`repro.analytic.model` extends it to
the paper's whole L2 grid without further simulation.

Semantics match :func:`~repro.caches.secondary.simulate_secondary`
exactly: demand fetches (read/write/ifetch misses) update recency and are
counted; L1 write-backs update recency — they install blocks in a
write-allocate L2 — but are not counted toward the local hit rate.  The
fully-associative evaluation is therefore bit-identical to simulating an
``n_sets == 1`` LRU cache over the same trace (the differ stage in
:mod:`repro.check.differ` enforces this against the golden oracle).

The pass is the standard O(n log n) Fenwick-tree algorithm, inlined here
(rather than reusing :mod:`repro.analysis.stack`) so one traversal fills
the read and write histograms and the cold/write-back counters together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.caches.cache import MissEventKind, MissTrace
from repro.mem.address import is_power_of_two, log2_int

__all__ = [
    "PROFILE_BLOCK_SIZES",
    "PROFILE_BUCKETS",
    "LocalityProfile",
    "profile_miss_trace",
]

#: The L2 block sizes of the paper's Table 4 grid; the default profiling
#: granularities.
PROFILE_BLOCK_SIZES: Tuple[int, ...] = (64, 128)

#: Index-bucket count for the combined-locality arrays: block address
#: modulo this many buckets.  A power of two at least as large as any
#: swept set count, so exact per-set footprints/demand shares fall out of
#: a reshape-sum for every ``n_sets <= PROFILE_BUCKETS`` (set index =
#: bucket mod n_sets when both are powers of two).
PROFILE_BUCKETS = 1024


@dataclass(frozen=True)
class LocalityProfile:
    """Exact stack-distance summary of one miss trace at one block size.

    Attributes:
        block_size: profiling granularity in bytes (power of two).
        read_hist: ``read_hist[d]`` counts demand reads (including
            instruction fetches) whose stack distance is exactly ``d``
            blocks; cold reads are *not* in the histogram.
        write_hist: same for demand write misses.
        cold_reads: first-touch demand reads (infinite distance).
        cold_writes: first-touch demand write misses.
        writebacks: L1 write-backs absorbed (recency/install only).
        unique_blocks: distinct blocks touched by any event.
        bucket_footprint: ``bucket_footprint[i]`` counts distinct blocks
            whose index ``block % PROFILE_BUCKETS == i`` (combined
            locality: the footprint's spread over set indices).  ``None``
            on profiles predating the combined-locality estimator.
        bucket_demand: demand events per index bucket, same keying.
    """

    block_size: int
    read_hist: np.ndarray
    write_hist: np.ndarray
    cold_reads: int
    cold_writes: int
    writebacks: int
    unique_blocks: int
    bucket_footprint: Optional[np.ndarray] = None
    bucket_demand: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.block_size):
            raise ValueError(f"block_size must be a power of two, got {self.block_size}")
        if self.read_hist.shape != self.write_hist.shape:
            raise ValueError(
                f"histogram shapes differ: {self.read_hist.shape} vs {self.write_hist.shape}"
            )

    @property
    def block_bits(self) -> int:
        """Block-offset bits of the profiling granularity."""
        return log2_int(self.block_size)

    @property
    def demand_accesses(self) -> int:
        """Total demand events (the local-hit-rate denominator)."""
        return (
            int(self.read_hist.sum())
            + int(self.write_hist.sum())
            + self.cold_reads
            + self.cold_writes
        )

    @property
    def demand_hist(self) -> np.ndarray:
        """Combined read+write stack-distance histogram."""
        return self.read_hist + self.write_hist

    def hits_within(self, capacity_blocks: int) -> int:
        """Demand accesses with stack distance below ``capacity_blocks``.

        By Mattson's theorem this is the exact demand-hit count of a
        fully-associative LRU cache holding ``capacity_blocks`` blocks.

        Raises:
            ValueError: for non-positive capacities.
        """
        if capacity_blocks <= 0:
            raise ValueError(f"capacity_blocks must be positive, got {capacity_blocks}")
        return int(self.demand_hist[:capacity_blocks].sum())


def profile_miss_trace(
    miss_trace: MissTrace,
    block_sizes: Sequence[int] = PROFILE_BLOCK_SIZES,
) -> Dict[int, LocalityProfile]:
    """Profile a miss trace at each requested block size.

    One Fenwick-tree pass per block size; the trace is traversed with the
    write-back install/recency semantics of
    :func:`~repro.caches.secondary.simulate_secondary` so the resulting
    fully-associative evaluation is exact (see the module docstring).

    Raises:
        ValueError: when a block size is below the trace's own block
            granularity (the trace cannot be refined, only coarsened).
    """
    profiles = {}
    for block_size in block_sizes:
        if not is_power_of_two(block_size):
            raise ValueError(f"block_size must be a power of two, got {block_size}")
        if log2_int(block_size) < miss_trace.block_bits:
            raise ValueError(
                f"cannot profile at {block_size}B: trace granularity is "
                f"{1 << miss_trace.block_bits}B"
            )
        profiles[block_size] = _profile_one(miss_trace, block_size)
    return profiles


def _profile_one(miss_trace: MissTrace, block_size: int) -> LocalityProfile:
    """One single-pass stack-distance profile at ``block_size``."""
    bits = log2_int(block_size)
    addrs = miss_trace.addrs.tolist()
    kinds = miss_trace.kinds.tolist()
    n = len(addrs)
    wb_kind = int(MissEventKind.WRITEBACK)
    write_kind = int(MissEventKind.WRITE_MISS)

    # Fenwick tree over trace positions, inlined for the hot loop: a 1 at
    # position p means p is the most recent access of some block.
    tree = [0] * (n + 1)

    def _add(index: int, delta: int) -> None:
        index += 1
        while index <= n:
            tree[index] += delta
            index += index & -index

    def _prefix(index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & -index
        return total

    last_position: Dict[int, int] = {}
    read_counts: Dict[int, int] = {}
    write_counts: Dict[int, int] = {}
    cold_reads = 0
    cold_writes = 0
    writebacks = 0
    bucket_mask = PROFILE_BUCKETS - 1
    bucket_demand = [0] * PROFILE_BUCKETS
    for position, (addr, kind) in enumerate(zip(addrs, kinds)):
        block = addr >> bits
        previous = last_position.get(block)
        if kind == wb_kind:
            writebacks += 1
        elif previous is None:
            if kind == write_kind:
                cold_writes += 1
            else:
                cold_reads += 1
        else:
            # Distinct blocks touched strictly between the two accesses:
            # most-recent markers in (previous, position).
            distance = _prefix(position - 1) - _prefix(previous)
            counts = write_counts if kind == write_kind else read_counts
            counts[distance] = counts.get(distance, 0) + 1
        if kind != wb_kind:
            bucket_demand[block & bucket_mask] += 1
        if previous is not None:
            _add(previous, -1)
        _add(position, +1)
        last_position[block] = position

    bucket_footprint = [0] * PROFILE_BUCKETS
    for block in last_position:
        bucket_footprint[block & bucket_mask] += 1

    return LocalityProfile(
        block_size=block_size,
        read_hist=_counts_to_array(read_counts, write_counts.keys()),
        write_hist=_counts_to_array(write_counts, read_counts.keys()),
        cold_reads=cold_reads,
        cold_writes=cold_writes,
        writebacks=writebacks,
        unique_blocks=len(last_position),
        bucket_footprint=np.array(bucket_footprint, dtype=np.int64),
        bucket_demand=np.array(bucket_demand, dtype=np.int64),
    )


def _counts_to_array(counts: Dict[int, int], other_keys: Iterable[int]) -> np.ndarray:
    """Densify a distance->count dict, padded to the paired histogram."""
    max_distance = max(list(counts) + list(other_keys), default=-1)
    hist = np.zeros(max_distance + 1, dtype=np.int64)
    for distance, count in counts.items():
        hist[distance] = count
    return hist
