"""Closed-form stream-buffer hit-rate model over a miss spectrum.

The paper's Sections 5-8 argue stream-buffer hit rate is a function of
the miss stream's run-length/stride structure.  This module takes that
literally: :mod:`repro.trace.spectrum` extracts the structure once
(config-free), and :func:`predict_streams` evaluates any
``n_streams``/filter/czone configuration from it in closed form, without
replaying the trace.

Per run of length L the model charges a **training cost** t — demand
misses the mechanism spends before the stream starts hitting — and
credits ``L - t`` hits, minus ``t_re`` retraining misses for every event
that kills the trained stream (an LRU eviction under allocation
pressure, or a write-back invalidating the stream's next entry, which
with head-only lookup permanently wedges the stream):

* ascending unit runs: ``t = 1`` unfiltered (Section 5 allocates on
  every miss, so the primer itself trains); with a unit filter
  (Section 6) ``t = 2`` when the primer's filter entry is still alive at
  seed time and ``t = 3`` when allocation pressure has evicted it;
* every other stride needs the Section 7 czone detector: ``t`` is
  computed by replaying the Figure 7 FSM arithmetically over the run's
  start address and byte stride at the *config's* ``czone_bits`` — two
  equal byte deltas inside one zone detect, so ``t`` is the index of the
  first element completing a 3-streak within a zone partition (often 3,
  later when the stride straddles zone boundaries, never when the zone
  is narrower than three strides);
* runs whose byte deltas are not constant (``run_byte_uniform == 0``)
  cannot verify in the FSM: predicted 0 hits, full-length uncertainty.

Eviction kills come from the spectrum's per-gap slot-pressure
histograms.  Each distinct run interleaving elements into one of this
run's gaps claims a stream slot — by allocating if untrained, by an LRU
hit-refresh if streaming — and under the unit filter those are the only
claims (lone misses just insert into the filter), so a filtered config's
stream dies in gaps where ``run_conc_ge`` reaches ``n_streams``.
Without the filter every miss allocates, so lone misses claim slots too
and the combined ``run_gaps_ge`` histogram applies.  Gaps within one
claim of the threshold ride in the error bound: whether a counted run
was actually stale, or claimed twice, decides them.

Every prediction carries a **declared error bound**: a calibrated base
term plus per-run uncertainty (czone training jitter, primer-age
boundary cases, the eviction-pressure band, deep write-back window
surplus), normalised by demand misses.  The ``analytic-streams`` differ
stage holds ``|predicted - oracle| <= bound`` against the golden
:class:`~repro.check.oracle.RefStreamPrefetcher` on every corpus seed,
and the sweep path (:func:`repro.sim.compare.analytic_stream_sweep`)
witnesses reported cells by real replay — predictions prune and rank,
simulation decides.

The model's envelope is the paper's core mechanism set: unpartitioned
lanes, head-only lookup (``lookup_depth == 1``), no minimum lead, and
the ``none``/``czone`` detectors.  :func:`stream_envelope_config`
coerces any config onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.core.config import StreamConfig, StrideDetector
from repro.trace.spectrum import (
    GAP_PRESSURE_BINS,
    RUN_KIND_UNIT,
    MissSpectrum,
    extract_spectrum,
)

__all__ = [
    "BOUND_BASE",
    "BOUND_CZONE_JITTER",
    "BOUND_PRIMER_EDGE",
    "StreamPrediction",
    "stream_envelope_config",
    "in_envelope",
    "predict_streams",
    "ensure_spectrum",
]

#: Base error-bound term (absolute hit-rate units): unmodeled
#: interference — filter aliasing between concurrent runs, czone-row
#: FIFO eviction, stream-allocation order effects, and the pressure
#: counter's seed-event overcount.  Calibrated so the 200-seed differ
#: corpus shows 0 out-of-bound predictions with ~2x headroom (see
#: docs/analytic.md, "Stream-model error bounds").
BOUND_BASE = 0.02

#: Per-czone-trained-run uncertainty (misses): detection can slip by a
#: couple of elements when interleaved misses share the config's zone or
#: the training row is evicted mid-streak.
BOUND_CZONE_JITTER = 3

#: Primer-age slop (allocation events): the spectrum's pressure counter
#: approximates the oracle's filter-insertion count, so primer ages
#: within this distance of the filter capacity could fall either side.
BOUND_PRIMER_EDGE = 2


@dataclass(frozen=True)
class StreamPrediction:
    """One config's predicted stream-buffer behaviour over a spectrum.

    Attributes:
        config: the (envelope) configuration evaluated.
        demand_misses: denominator — demand misses in the spectrum.
        predicted_hits: modeled stream-hit count.
        hit_rate: ``predicted_hits / demand_misses`` (0.0 on empty).
        bound: declared absolute error bound on ``hit_rate`` vs the
            golden oracle; enforced by the ``analytic-streams`` stage.
        allocations: modeled stream allocations (trains + retrains for
            filtered configs, every non-hit miss otherwise).
        eb_estimate: Table 2/3-style extra-bandwidth estimate, percent
            of demand misses (``allocations * depth`` prefetches issued,
            hits consumed).
        runs_modeled / runs_unmodeled: coverage accounting; unmodeled
            runs (non-constant byte deltas needing the FSM) predict 0
            hits and widen the bound by their full length.
    """

    config: StreamConfig
    demand_misses: int
    predicted_hits: float
    hit_rate: float
    bound: float
    allocations: float
    eb_estimate: float
    runs_modeled: int
    runs_unmodeled: int


def stream_envelope_config(config: StreamConfig) -> StreamConfig:
    """The nearest configuration inside the model's envelope.

    Forces unpartitioned lanes, head-only lookup and zero minimum lead,
    and maps the ``min-delta`` detector to ``czone`` (the modelable
    Section 7 mechanism).  Idempotent; configs already in the envelope
    pass through unchanged.
    """
    detector = config.stride_detector
    if detector == StrideDetector.MIN_DELTA:
        detector = StrideDetector.CZONE
    return replace(
        config,
        partitioned=False,
        lookup_depth=1,
        min_lead=0,
        stride_detector=detector,
    )


def in_envelope(config: StreamConfig) -> bool:
    """Whether :func:`predict_streams` models this config exactly."""
    return (
        not config.partitioned
        and config.lookup_depth == 1
        and config.min_lead == 0
        and config.stride_detector in (StrideDetector.NONE, StrideDetector.CZONE)
    )


def _czone_training_cost(
    start_addr: int, stride_bytes: int, length: int, czone_bits: int
) -> Optional[int]:
    """Misses the Figure 7 FSM spends before detecting this run.

    Walks the run's arithmetic sequence, counting consecutive elements
    sharing a ``czone_bits`` partition tag: the FSM's META1/META2 states
    verify on the third consecutive in-zone element (two equal deltas),
    so the streak hitting 3 detects and the cost is that element's index
    plus one.  None when no 3-streak exists within the run — strides
    wider than a third of the zone never train.
    """
    streak = 0
    last_tag = None
    addr = start_addr
    for index in range(length):
        tag = addr >> czone_bits
        if tag == last_tag:
            streak += 1
        else:
            streak = 1
            last_tag = tag
        if streak >= 3:
            return index + 1
        addr += stride_bytes
    return None


def _gaps_at_least(gaps_ge: Sequence[int], pressure: int, gap_count: int) -> int:
    """Gaps of one run with at least ``pressure`` slot-claim events.

    ``gap_count`` is the run's total tracked-gap count — the histogram
    only records pressures >= 1, so it serves as the ``pressure <= 0``
    answer (every gap qualifies).
    """
    if pressure <= 0:
        return gap_count
    if pressure > GAP_PRESSURE_BINS:
        return 0  # beyond the histogram: assume unevicted (band covers)
    return int(gaps_ge[pressure - 1])


def predict_streams(
    spectrum: MissSpectrum, config: StreamConfig
) -> StreamPrediction:
    """Closed-form stream-buffer prediction for one configuration.

    Raises:
        ValueError: when the config sits outside the model envelope
            (see :func:`in_envelope`) or its block granularity differs
            from the spectrum's.
    """
    if not in_envelope(config):
        raise ValueError(
            "config outside the stream-model envelope "
            "(partitioned/lookup_depth/min_lead/detector); coerce via "
            "stream_envelope_config() first"
        )
    if config.block_bits != spectrum.block_bits:
        raise ValueError(
            f"config block_bits {config.block_bits} != spectrum block_bits "
            f"{spectrum.block_bits}"
        )

    demand = spectrum.demand_misses
    block_bytes = 1 << spectrum.block_bits
    filtered = config.unit_filter_entries > 0
    czone = config.stride_detector == StrideDetector.CZONE
    n_streams = config.n_streams

    total_hits = 0.0
    total_uncertainty = 0.0
    allocations = 0.0
    runs_modeled = 0
    runs_unmodeled = 0

    stride_bytes_arr = spectrum.run_stride_bytes.tolist()
    stride_blocks_arr = spectrum.run_stride_blocks.tolist()
    lengths = spectrum.run_length.tolist()
    starts = spectrum.run_start_addr.tolist()
    primer_ages = spectrum.run_primer_age.tolist()
    wb_next_arr = spectrum.run_wb_next.tolist()
    wb_window_arr = spectrum.run_wb_window.tolist()
    uniform_arr = spectrum.run_byte_uniform.tolist()
    kinds = spectrum.run_kind.tolist()
    gaps = spectrum.run_gaps_ge
    concs = spectrum.run_conc_ge

    for i in range(spectrum.n_runs):
        length = lengths[i]
        stride_blocks = stride_blocks_arr[i]
        stride_bytes = stride_bytes_arr[i]
        uncertainty = 0.0

        if stride_blocks == 1 and kinds[i] == RUN_KIND_UNIT:
            # Ascending unit run: Section 5/6 allocation.
            if filtered:
                age = primer_ages[i]
                capacity = config.unit_filter_entries
                train = 2 if age < capacity else 3
                retrain = 2
                if abs(age - capacity) <= BOUND_PRIMER_EDGE:
                    uncertainty += 1  # primer-age boundary: t is 2-or-3
            else:
                train = 1
                retrain = 1
        else:
            # Any other stride needs the czone detector.
            blocked = (
                not czone
                or not filtered  # Section 5 allocates +1 streams only
                or stride_blocks == 0
                or (stride_blocks < 0 and not config.allow_negative_strides)
                or stride_bytes % block_bytes != 0
            )
            if blocked:
                runs_modeled += 1
                if not filtered:
                    # Every element allocates a useless +1 stream.
                    allocations += length
                continue
            if not uniform_arr[i]:
                # Non-constant byte deltas never verify in the FSM; the
                # run may still score partial detections we cannot see.
                runs_unmodeled += 1
                total_uncertainty += length
                continue
            train = _czone_training_cost(
                starts[i], stride_bytes, length, config.czone_bits
            )
            if train is None:
                runs_modeled += 1
                uncertainty += BOUND_CZONE_JITTER  # near-miss streaks
                total_uncertainty += uncertainty
                continue
            retrain = 3
            uncertainty += BOUND_CZONE_JITTER

        # Stream kills: LRU eviction under slot pressure, plus
        # write-backs invalidating the next expected entry (head-only
        # lookup wedges the stream until it retrains).  Each distinct
        # interleaved run claims one slot (allocation or hit refresh);
        # lone misses claim additional slots only when every miss
        # allocates, i.e. without the unit filter.  The run's stream is
        # evicted in a gap when the claims reach ``n_streams``.
        gap_count = length - (2 if kinds[i] == RUN_KIND_UNIT else 3)
        if gap_count < 0:
            gap_count = 0
        pressure_hist = concs[i] if filtered else gaps[i]
        evictions = _gaps_at_least(pressure_hist, n_streams, gap_count)
        # Gaps within one claim of the threshold can flip either way
        # (stale interleaved runs, LRU order, double-allocating runs);
        # zero-pressure gaps are certain survivals and stay out of it.
        band = _gaps_at_least(pressure_hist, max(1, n_streams - 1), gap_count) - (
            _gaps_at_least(pressure_hist, n_streams + 1, gap_count)
            if n_streams + 1 <= GAP_PRESSURE_BINS
            else 0
        )
        uncertainty += retrain * band
        kills = evictions + wb_next_arr[i]
        if config.depth > 1:
            # Deeper FIFO entries can also be invalidated and wedge the
            # stream when they surface; the spectrum only localises
            # write-backs to a 4-stride window, so band the surplus.
            uncertainty += retrain * (wb_window_arr[i] - wb_next_arr[i])
        uncertainty += wb_next_arr[i]  # retrain alignment jitter

        hits = length - train - retrain * kills
        if hits < 0:
            hits = 0
        total_hits += hits
        allocations += 1 + kills
        runs_modeled += 1
        total_uncertainty += uncertainty

    if not filtered:
        # Section 5: every lone miss allocates a speculative +1 stream.
        allocations += spectrum.lone_misses

    if demand <= 0:
        return StreamPrediction(
            config=config,
            demand_misses=0,
            predicted_hits=0.0,
            hit_rate=0.0,
            bound=BOUND_BASE,
            allocations=0.0,
            eb_estimate=0.0,
            runs_modeled=runs_modeled,
            runs_unmodeled=runs_unmodeled,
        )

    hit_rate = total_hits / demand
    bound = BOUND_BASE + total_uncertainty / demand
    issued = allocations * config.depth
    eb_estimate = 100.0 * max(0.0, issued - total_hits) / demand
    return StreamPrediction(
        config=config,
        demand_misses=demand,
        predicted_hits=total_hits,
        hit_rate=hit_rate,
        bound=min(bound, 1.0),
        allocations=allocations,
        eb_estimate=eb_estimate,
        runs_modeled=runs_modeled,
        runs_unmodeled=runs_unmodeled,
    )


def ensure_spectrum(miss_trace, store=None, digest: Optional[str] = None):
    """A trace's miss spectrum, through the persistent store.

    Loads from ``store`` when a current-format record exists under
    ``digest``; otherwise extracts in-process and (when a store and
    digest are given) persists the result for the next session.  The
    companion of :func:`repro.analytic.screen.ensure_profiles` for the
    spectrum layer.
    """
    if store is not None and digest is not None:
        stored = store.load_spectrum(digest)
        if stored is not None:
            return stored
    from repro.obs.spans import get_tracer

    with get_tracer().span("analytic.spectrum"):
        spectrum = extract_spectrum(miss_trace)
    if store is not None and digest is not None:
        store.save_spectrum(digest, spectrum)
    return spectrum
