"""Hit-rate evaluation from a locality profile.

Two evaluators over a :class:`~repro.analytic.profile.LocalityProfile`:

* **Fully-associative LRU** — exact, by Mattson's theorem: a demand
  access hits in a C-block cache iff its stack distance is below C, so a
  prefix sum over the histogram gives the hit count of every capacity at
  once, bit-identical to simulating the ``n_sets == 1`` cache.
* **Set-associative LRU** — estimated, with the *combined locality*
  set-partition model of Ling et al. ("Fast Modeling L2 Cache Reuse
  Distance Histograms", arXiv 1907.05068): an access with full-stack
  distance d hits in an A-way set iff at most A-1 of the d intervening
  distinct blocks land in its set.  The naive model takes that landing
  probability to be the uniform 1/S; real address streams skew — arrays
  walk sets unevenly, hot structures pile into a few sets — so the
  profile additionally carries per-index-bucket footprint and demand
  arrays (:data:`~repro.analytic.profile.PROFILE_BUCKETS` buckets keyed
  by block index, the same ``block & (n_sets-1)`` bits the cache hashes
  on).  Per set s the model uses the *footprint share*
  ``f_s = U_s / U_total`` as the landing probability and weights the
  per-set binomial CDFs by the *demand share* ``w_s = D_s / D_total``:

      P_hit(d) = sum_s w_s * P[Binomial(d, f_s) <= A-1]

  Uniform streams give f_s = 1/S exactly and the model degrades to the
  naive binomial; profiles from before the bucket arrays existed fall
  back to it explicitly.  Exact for S == 1 by construction; validated
  against direct simulation in ``tests/test_analytic_profile.py`` and
  error-bounded in ``docs/analytic.md`` (the measured bound backs
  ``ESTIMATOR_SLACK`` in :mod:`repro.analytic.screen`).

The binomial CDF is computed with a vectorised term recurrence (no scipy
dependency): term_k = term_{k-1} * (d-k+1)/k * p/(1-p).  For speed the
per-set (f_s, w_s) pairs are collapsed to at most
:data:`MAX_PARTITION_GROUPS` weighted groups (exact when there are that
few distinct footprint shares, demand-weighted quantile bins otherwise),
so an estimate costs O(groups * assoc * len(hist)) regardless of S.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.profile import LocalityProfile
from repro.caches.cache import CacheConfig
from repro.caches.secondary import candidate_configs

__all__ = [
    "MAX_PARTITION_GROUPS",
    "fa_hit_count",
    "fa_hit_rate",
    "fa_hit_curve",
    "set_partition_groups",
    "estimate_hit_rate",
    "best_estimate_at_size",
]

#: Cap on distinct (landing probability, weight) groups one estimate
#: evaluates; beyond it, groups are demand-weighted quantile bins.
MAX_PARTITION_GROUPS = 16


def fa_hit_count(profile: LocalityProfile, capacity_bytes: int) -> int:
    """Exact fully-associative LRU demand-hit count at a capacity.

    Raises:
        ValueError: for capacities that are not a positive multiple of
            the profile's block size.
    """
    if capacity_bytes <= 0 or capacity_bytes % profile.block_size:
        raise ValueError(
            f"capacity {capacity_bytes} is not a positive multiple of "
            f"block size {profile.block_size}"
        )
    return profile.hits_within(capacity_bytes // profile.block_size)


def fa_hit_rate(profile: LocalityProfile, capacity_bytes: int) -> float:
    """Exact fully-associative LRU local hit rate at a capacity.

    0.0 when the profile has no demand accesses, mirroring
    :attr:`~repro.caches.secondary.SecondaryResult.local_hit_rate`.
    """
    demand = profile.demand_accesses
    if not demand:
        return 0.0
    return fa_hit_count(profile, capacity_bytes) / demand


def fa_hit_curve(
    profile: LocalityProfile, capacities: Sequence[int]
) -> Dict[int, float]:
    """Exact fully-associative hit rate at each capacity (bytes)."""
    return {capacity: fa_hit_rate(profile, capacity) for capacity in capacities}


def _binomial_cdf(distances: np.ndarray, successes: int, p: float) -> np.ndarray:
    """P[Binomial(d, p) <= successes] for each d, by term recurrence."""
    if p <= 0.0:
        return np.ones_like(distances, dtype=np.float64)
    if p >= 1.0:
        return (distances <= successes).astype(np.float64)
    d = distances.astype(np.float64)
    ratio = p / (1.0 - p)
    # term_0 = (1-p)^d; log-space keeps long distances from underflowing
    # to a silent 0 * inf in the recurrence.
    term = np.exp(d * np.log1p(-p))
    total = term.copy()
    for k in range(1, successes + 1):
        term = term * (d - k + 1) / k * ratio
        np.maximum(term, 0.0, out=term)  # d < k contributes nothing
        total += term
    return np.minimum(total, 1.0)


def set_partition_groups(
    profile: LocalityProfile, n_sets: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Per-set (landing probability, demand weight) groups of a profile.

    Collapses the profile's index-bucket footprint/demand arrays to at
    most :data:`MAX_PARTITION_GROUPS` weighted groups ``(f, w)`` with
    ``sum(w) == 1``: an intervening distinct block lands in a group-f set
    with probability f, and fraction w of demand goes to such sets.

    Returns None when the profile predates the bucket arrays (the caller
    then falls back to the uniform ``1/n_sets`` model).  Exact when the
    stream is uniform over sets or there are few distinct footprint
    shares; demand-weighted quantile binning otherwise.
    """
    footprint = profile.bucket_footprint
    bucket_demand = profile.bucket_demand
    if footprint is None or bucket_demand is None:
        return None
    n_buckets = len(footprint)
    total_footprint = int(footprint.sum())
    total_demand = int(bucket_demand.sum())
    if total_footprint <= 0 or total_demand <= 0:
        return None
    if n_sets <= n_buckets:
        # set index = bucket & (n_sets - 1): exact per-set sums.
        folds = n_buckets // n_sets
        set_footprint = footprint.reshape(folds, n_sets).sum(axis=0)
        set_demand = bucket_demand.reshape(folds, n_sets).sum(axis=0)
        f = set_footprint / total_footprint
        w = set_demand / total_demand
    else:
        # Each bucket's footprint spreads over n_sets / n_buckets sets;
        # uniform-within-bucket is the best available refinement.
        spread = n_sets // n_buckets
        f = footprint / (total_footprint * spread)
        w = bucket_demand / total_demand
    keep = w > 0
    f, w = f[keep], w[keep]
    values, inverse = np.unique(f, return_inverse=True)
    if len(values) <= MAX_PARTITION_GROUPS:
        merged_w = np.zeros(len(values))
        np.add.at(merged_w, inverse, w)
        return values, merged_w
    # Demand-weighted quantile bins over the sorted landing probabilities.
    order = np.argsort(f)
    f, w = f[order], w[order]
    edges = np.searchsorted(
        np.cumsum(w), np.linspace(0.0, 1.0, MAX_PARTITION_GROUPS + 1)[1:-1]
    )
    groups_f = []
    groups_w = []
    for lo, hi in zip(
        np.concatenate(([0], edges)), np.concatenate((edges, [len(f)]))
    ):
        if hi <= lo:
            continue
        weight = w[lo:hi].sum()
        if weight <= 0:
            continue
        groups_f.append(float(np.dot(f[lo:hi], w[lo:hi]) / weight))
        groups_w.append(float(weight))
    return np.array(groups_f), np.array(groups_w)


def estimate_hit_rate(profile: LocalityProfile, config: CacheConfig) -> float:
    """Estimated local hit rate of an LRU cache from the profile.

    Exact for fully-associative configurations (``n_sets == 1``);
    otherwise the combined-locality set-partition estimate described in
    the module docstring, degrading to the uniform binomial when the
    profile carries no bucket arrays.

    Raises:
        ValueError: when the config's block size differs from the
            profile's, or for non-LRU policies (the stack model only
            describes LRU).
    """
    if config.block_size != profile.block_size:
        raise ValueError(
            f"config block size {config.block_size} != profile block size "
            f"{profile.block_size}"
        )
    if config.policy != "lru":
        raise ValueError(f"stack-distance model requires LRU, got {config.policy!r}")
    demand = profile.demand_accesses
    if not demand:
        return 0.0
    if config.n_sets == 1:
        return fa_hit_count(profile, config.capacity) / demand
    hist = profile.demand_hist
    if not len(hist):
        return 0.0
    distances = np.arange(len(hist))
    groups = set_partition_groups(profile, config.n_sets)
    if groups is None:
        p_hit = _binomial_cdf(distances, config.assoc - 1, 1.0 / config.n_sets)
    else:
        fs, ws = groups
        p_hit = np.zeros(len(hist))
        for f, w in zip(fs.tolist(), ws.tolist()):
            p_hit += w * _binomial_cdf(distances, config.assoc - 1, f)
    return float(np.dot(hist, p_hit)) / demand


def best_estimate_at_size(
    profiles: Mapping[int, LocalityProfile],
    size: int,
    assocs: Optional[Sequence[int]] = None,
    block_sizes: Optional[Sequence[int]] = None,
) -> Tuple[float, CacheConfig]:
    """Best estimated hit rate over the paper's config grid at one size.

    Args:
        profiles: block size -> profile (one per grid block size).
        size: L2 capacity in bytes.
        assocs / block_sizes: grid axes; default to the paper's.

    Returns:
        ``(estimate, config)`` for the best configuration.

    Raises:
        KeyError: when a grid block size has no profile.
    """
    kwargs = {}
    if assocs is not None:
        kwargs["assocs"] = assocs
    if block_sizes is not None:
        kwargs["block_sizes"] = block_sizes
    best: Optional[Tuple[float, CacheConfig]] = None
    for config in candidate_configs(size, **kwargs):
        estimate = estimate_hit_rate(profiles[config.block_size], config)
        if best is None or estimate > best[0]:
            best = (estimate, config)
    assert best is not None  # candidate_configs never returns an empty grid
    return best
