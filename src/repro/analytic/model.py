"""Hit-rate evaluation from a locality profile.

Two evaluators over a :class:`~repro.analytic.profile.LocalityProfile`:

* **Fully-associative LRU** — exact, by Mattson's theorem: a demand
  access hits in a C-block cache iff its stack distance is below C, so a
  prefix sum over the histogram gives the hit count of every capacity at
  once, bit-identical to simulating the ``n_sets == 1`` cache.
* **Set-associative LRU** — estimated, via the binomial set-partition
  correction used by reuse-distance cache models (Ling et al., "Fast
  Modeling L2 Cache Reuse Distance Histograms"): hashing blocks uniformly
  over S sets, an access with full-stack distance d hits in an A-way set
  iff at most A-1 of the d intervening distinct blocks land in its set,
  i.e. with probability P[Binomial(d, 1/S) <= A-1].  Exact for S == 1 by
  construction; validated against direct simulation in
  ``tests/test_analytic_profile.py`` and ``docs/analytic.md``.

The binomial CDF is computed with a vectorised term recurrence (no scipy
dependency): term_k = term_{k-1} * (d-k+1)/k * p/(1-p).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.profile import LocalityProfile
from repro.caches.cache import CacheConfig
from repro.caches.secondary import candidate_configs

__all__ = [
    "fa_hit_count",
    "fa_hit_rate",
    "fa_hit_curve",
    "estimate_hit_rate",
    "best_estimate_at_size",
]


def fa_hit_count(profile: LocalityProfile, capacity_bytes: int) -> int:
    """Exact fully-associative LRU demand-hit count at a capacity.

    Raises:
        ValueError: for capacities that are not a positive multiple of
            the profile's block size.
    """
    if capacity_bytes <= 0 or capacity_bytes % profile.block_size:
        raise ValueError(
            f"capacity {capacity_bytes} is not a positive multiple of "
            f"block size {profile.block_size}"
        )
    return profile.hits_within(capacity_bytes // profile.block_size)


def fa_hit_rate(profile: LocalityProfile, capacity_bytes: int) -> float:
    """Exact fully-associative LRU local hit rate at a capacity.

    0.0 when the profile has no demand accesses, mirroring
    :attr:`~repro.caches.secondary.SecondaryResult.local_hit_rate`.
    """
    demand = profile.demand_accesses
    if not demand:
        return 0.0
    return fa_hit_count(profile, capacity_bytes) / demand


def fa_hit_curve(
    profile: LocalityProfile, capacities: Sequence[int]
) -> Dict[int, float]:
    """Exact fully-associative hit rate at each capacity (bytes)."""
    return {capacity: fa_hit_rate(profile, capacity) for capacity in capacities}


def _binomial_cdf(distances: np.ndarray, successes: int, p: float) -> np.ndarray:
    """P[Binomial(d, p) <= successes] for each d, by term recurrence."""
    if p <= 0.0:
        return np.ones_like(distances, dtype=np.float64)
    if p >= 1.0:
        return (distances <= successes).astype(np.float64)
    d = distances.astype(np.float64)
    ratio = p / (1.0 - p)
    # term_0 = (1-p)^d; log-space keeps long distances from underflowing
    # to a silent 0 * inf in the recurrence.
    term = np.exp(d * np.log1p(-p))
    total = term.copy()
    for k in range(1, successes + 1):
        term = term * (d - k + 1) / k * ratio
        np.maximum(term, 0.0, out=term)  # d < k contributes nothing
        total += term
    return np.minimum(total, 1.0)


def estimate_hit_rate(profile: LocalityProfile, config: CacheConfig) -> float:
    """Estimated local hit rate of an LRU cache from the profile.

    Exact for fully-associative configurations (``n_sets == 1``);
    otherwise the binomial set-partition estimate described in the module
    docstring.

    Raises:
        ValueError: when the config's block size differs from the
            profile's, or for non-LRU policies (the stack model only
            describes LRU).
    """
    if config.block_size != profile.block_size:
        raise ValueError(
            f"config block size {config.block_size} != profile block size "
            f"{profile.block_size}"
        )
    if config.policy != "lru":
        raise ValueError(f"stack-distance model requires LRU, got {config.policy!r}")
    demand = profile.demand_accesses
    if not demand:
        return 0.0
    if config.n_sets == 1:
        return fa_hit_count(profile, config.capacity) / demand
    hist = profile.demand_hist
    if not len(hist):
        return 0.0
    distances = np.arange(len(hist))
    p_hit = _binomial_cdf(distances, config.assoc - 1, 1.0 / config.n_sets)
    return float(np.dot(hist, p_hit)) / demand


def best_estimate_at_size(
    profiles: Mapping[int, LocalityProfile],
    size: int,
    assocs: Optional[Sequence[int]] = None,
    block_sizes: Optional[Sequence[int]] = None,
) -> Tuple[float, CacheConfig]:
    """Best estimated hit rate over the paper's config grid at one size.

    Args:
        profiles: block size -> profile (one per grid block size).
        size: L2 capacity in bytes.
        assocs / block_sizes: grid axes; default to the paper's.

    Returns:
        ``(estimate, config)`` for the best configuration.

    Raises:
        KeyError: when a grid block size has no profile.
    """
    kwargs = {}
    if assocs is not None:
        kwargs["assocs"] = assocs
    if block_sizes is not None:
        kwargs["block_sizes"] = block_sizes
    best: Optional[Tuple[float, CacheConfig]] = None
    for config in candidate_configs(size, **kwargs):
        estimate = estimate_hit_rate(profiles[config.block_size], config)
        if best is None or estimate > best[0]:
            best = (estimate, config)
    assert best is not None  # candidate_configs never returns an empty grid
    return best
