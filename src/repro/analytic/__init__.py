"""Analytic locality engine: stack-distance profiles replacing grid simulation.

One pass over an L1 miss trace (:mod:`repro.analytic.profile`) yields the
exact fully-associative LRU hit rate of every capacity at once and, via a
binomial set-partition correction (:mod:`repro.analytic.model`), accurate
estimates for the paper's whole set-associative L2 grid.  The screening
search (:mod:`repro.analytic.screen`) uses those curves to answer the
Table 4 question — the minimum L2 matching the stream hit rate — while
simulating only a handful of boundary configurations.  The companion
stream-side model (:mod:`repro.analytic.streams`) does the same for the
*other* axis of the paper: a one-pass miss-spectrum extraction
(:mod:`repro.trace.spectrum`) feeds a closed-form stream-buffer hit-rate
model that predicts ``n_streams``/filter/czone sweep cells without
replay, each prediction carrying a declared error bound the differ
enforces against the golden oracle.  See ``docs/analytic.md``.
"""

from repro.analytic.model import (
    best_estimate_at_size,
    estimate_hit_rate,
    fa_hit_count,
    fa_hit_curve,
    fa_hit_rate,
)
from repro.analytic.profile import (
    PROFILE_BLOCK_SIZES,
    LocalityProfile,
    profile_miss_trace,
)
from repro.analytic.screen import (
    ESTIMATOR_SLACK,
    ensure_profiles,
    min_matching_l2_size_analytic,
)
from repro.analytic.streams import (
    StreamPrediction,
    ensure_spectrum,
    in_envelope,
    predict_streams,
    stream_envelope_config,
)

__all__ = [
    "PROFILE_BLOCK_SIZES",
    "ESTIMATOR_SLACK",
    "LocalityProfile",
    "StreamPrediction",
    "best_estimate_at_size",
    "ensure_profiles",
    "ensure_spectrum",
    "estimate_hit_rate",
    "fa_hit_count",
    "fa_hit_curve",
    "fa_hit_rate",
    "in_envelope",
    "min_matching_l2_size_analytic",
    "predict_streams",
    "profile_miss_trace",
    "stream_envelope_config",
]
