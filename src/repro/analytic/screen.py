"""Analytic fast path for the Table 4 minimum-L2 search.

The brute-force search (:func:`repro.sim.compare.min_matching_l2_size`)
simulates candidate (size, assoc, block) configurations until it brackets
the smallest matching capacity.  This module prunes that work with the
stack-distance profile:

1. profile the miss trace once (or load the profile from the
   :class:`~repro.trace.store.TraceStore`, keyed by the trace digest);
2. evaluate the whole size ladder analytically — exact fully-associative
   hit rates plus the combined-locality set-associative estimates of
   :mod:`repro.analytic.model`;
3. run the same lower-bound search as the pure path, but (a) seed it with
   the analytically predicted boundary so a correct prediction resolves
   in two probes, and (b) skip simulating any size whose best analytic
   value sits below the target by more than a safety margin — those are
   *certain misses*.

The margin is the set-sampling confidence half-width
(:func:`~repro.caches.sampling.sampling_halfwidth`) plus a small
estimator slack, so neither sampling noise nor set-partition error can
flip a decision the screen skipped.  A *match* is never declared
analytically: every matched size is witnessed by real (sampled)
simulation through the shared :func:`~repro.sim.compare.probe_size`
helper, so any size both paths probe yields bit-identical numbers and
the returned ``matched_size`` agrees with the brute-force search.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analytic.model import best_estimate_at_size, fa_hit_rate
from repro.analytic.profile import (
    PROFILE_BLOCK_SIZES,
    LocalityProfile,
    profile_miss_trace,
)
from repro.caches.cache import MissTrace
from repro.caches.sampling import SamplingPlan, sampling_halfwidth
from repro.caches.secondary import PAPER_L2_SIZES
from repro.core.config import StreamConfig
from repro.mechanisms import MechanismConfig, mechanism_label
from repro.sim.vector import replay_secondary, replay_streams
from repro.obs.metrics import engine_registry
from repro.obs.spans import get_tracer
from repro.sim.compare import (
    MatchResult,
    SizePoint,
    probe_size,
    search_min_match,
)
from repro.sim.runner import MissTraceCache, default_cache, resolve_workload_ref
from repro.trace.store import TraceStore
from repro.workloads.base import Workload

__all__ = ["ESTIMATOR_SLACK", "ensure_profiles", "min_matching_l2_size_analytic"]

#: Safety slack added to the pruning margin for set-partition estimator
#: error.  Calibrated against the 200-seed differ corpus with the
#: combined-locality estimator: the measured worst-case absolute error
#: over the full Table-4 config grid is 0.0069 (uniform binomial: 0.0078
#: — docs/analytic.md, "Validated error bounds"), and the slack holds
#: ~1.45x headroom above it.  Sizes within the margin are simulated, not
#: trusted, so shrinking the slack prunes more of the grid without
#: weakening the witness guarantee.
ESTIMATOR_SLACK = 0.01


def ensure_profiles(
    miss_trace: MissTrace,
    store: Optional[TraceStore] = None,
    digest: Optional[str] = None,
    block_sizes: Sequence[int] = PROFILE_BLOCK_SIZES,
) -> Dict[int, LocalityProfile]:
    """Locality profiles for a trace, through the persistent store.

    Loads from ``store`` when a complete, current-format record exists
    under ``digest``; otherwise profiles in-process and (when a store and
    digest are given) persists the result for the next session.
    """
    if store is not None and digest is not None:
        stored = store.load_profiles(digest)
        if stored is not None and all(bs in stored for bs in block_sizes):
            return stored
    with get_tracer().span("analytic.profile", blocks=len(tuple(block_sizes))):
        profiles = profile_miss_trace(miss_trace, block_sizes)
    if store is not None and digest is not None:
        store.save_profiles(digest, profiles)
    return profiles


def min_matching_l2_size_analytic(
    workload: Union[str, Workload],
    scale: float = 1.0,
    seed: int = 0,
    stream_config: Optional[StreamConfig] = None,
    sizes: Sequence[int] = PAPER_L2_SIZES,
    sampling: SamplingPlan = SamplingPlan(sample_every=8),
    cache: Optional[MissTraceCache] = None,
    estimator_slack: float = ESTIMATOR_SLACK,
    mechanism: Optional[MechanismConfig] = None,
) -> MatchResult:
    """Analytically screened version of ``min_matching_l2_size``.

    Same arguments and same ``MatchResult`` semantics as the pure path —
    identical ``matched_size``, and bit-identical ``SizePoint`` values at
    any size both paths simulate — but typically an order of magnitude
    fewer configurations simulated (``configs_simulated`` records the
    actual count; ``analytic_estimates`` the screen's per-size values).

    The screen applies to *every* mechanism, not just streams: the
    stack-distance estimates describe the candidate **L2** sizes, and the
    mechanism only sets the target hit rate those estimates are pruned
    against.  A certain-miss decision (``estimate + margin < target``)
    is therefore mechanism-agnostic, and every match is still witnessed
    by real sampled simulation regardless of which mechanism produced
    the target.
    """
    if mechanism is not None and stream_config is not None:
        raise ValueError("pass either stream_config or mechanism, not both")
    cache = cache if cache is not None else default_cache()
    name, scale, seed, _ = resolve_workload_ref(workload, scale, seed)
    miss_trace, _ = cache.get(workload, scale=scale, seed=seed)
    if mechanism is not None and mechanism.kind != "streams":
        stream_stats = replay_secondary(mechanism, miss_trace)
        label = mechanism_label(mechanism)
    else:
        if mechanism is not None:
            config = mechanism.streams
        else:
            config = (
                stream_config if stream_config is not None else StreamConfig.non_unit()
            )
        stream_stats = replay_streams(config, miss_trace)
        label = "streams"
    target = stream_stats.hit_rate

    digest = None
    if cache.store is not None:
        digest = cache.trace_key(name, scale, seed)
    profiles = ensure_profiles(miss_trace, store=cache.store, digest=digest)

    sizes_sorted = sorted(sizes)
    estimates: List[float] = []
    bounds: List[float] = []
    for size in sizes_sorted:
        estimate, _ = best_estimate_at_size(profiles, size)
        # The certain-miss bound also covers the exact FA curve: set
        # partitioning can occasionally beat full associativity, but
        # never both the FA rate and the binomial estimate at once by
        # more than the slack.
        bound = max(
            [estimate] + [fa_hit_rate(profile, size) for profile in profiles.values()]
        )
        estimates.append(estimate)
        bounds.append(bound)

    demand = next(iter(profiles.values())).demand_accesses
    margin = (
        sampling_halfwidth(demand // sampling.sample_every, population=demand)
        + estimator_slack
    )

    points: List[SizePoint] = []
    counter = [0]
    pruned = [0]
    probe_clock = [0.0]
    registry = engine_registry()

    def decide(index: int) -> bool:
        if bounds[index] + margin < target:
            pruned[0] += 1
            registry.counter(
                "engine_analytic_pruned_total",
                "ladder sizes rejected analytically without simulation",
            ).inc()
            return False  # certain miss: no configuration can reach the target
        started = time.perf_counter()
        point, simulated = probe_size(
            miss_trace, sizes_sorted[index], sampling, target
        )
        probe_clock[0] += time.perf_counter() - started
        registry.counter(
            "engine_analytic_probed_total",
            "ladder sizes the analytic screen had to simulate",
        ).inc()
        points.append(point)
        counter[0] += simulated
        return point.hit_rate >= target

    guess = next(
        (i for i, estimate in enumerate(estimates) if estimate >= target), None
    )
    matched_index = search_min_match(len(sizes_sorted), decide, guess=guess)
    return MatchResult(
        workload=name,
        scale=scale,
        stream_stats=stream_stats,
        matched_size=None if matched_index is None else sizes_sorted[matched_index],
        l2_hit_rates=tuple(sorted(points)),
        configs_simulated=counter[0],
        method="analytic",
        analytic_estimates=tuple(zip(sizes_sorted, estimates)),
        sizes_pruned=pruned[0],
        probe_seconds=probe_clock[0],
        mechanism=label,
    )
