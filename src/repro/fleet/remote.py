"""Replicated trace-store layer: fetch content-addressed blobs by digest.

Any worker can serve any cell after one transfer: when a chunk arrives
for a trace the worker has neither computed nor stored, it fetches the
raw store bytes from the chunk's ``blob_origin`` (normally the
frontend, which either has the blob or returns a clean 404) and ingests
them into its local :class:`~repro.trace.store.TraceStore` under the
same digest.  Content addressing makes the transfer trivially
verifiable — the digest *is* the identity — and a corrupt transfer
degrades to an ordinary store miss on load.

Two failure modes, deliberately distinct:

* :class:`BlobNotFound` — the origin answered 404: the blob does not
  exist there.  Under the default ``"fallback"`` fetch policy the
  worker recomputes locally; under ``"require"`` the affected cells
  fail with a tagged TaskError (no recompute, no hang).
* :class:`RemoteStoreError` — the origin was unreachable or answered
  garbage after retries; the caller treats it like a local miss.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set
from urllib.parse import urlsplit

from repro.obs.log import get_logger
from repro.obs.metrics import engine_registry
from repro.obs.spans import get_tracer
from repro.service.client import RequestFailed, ServiceClient
from repro.trace.store import TraceStore

__all__ = [
    "BlobNotFound",
    "RemoteStoreError",
    "fetch_blob",
    "replicate_traces",
]


class RemoteStoreError(RuntimeError):
    """The blob origin failed (unreachable, non-404 error, bad body)."""


class BlobNotFound(KeyError):
    """The origin answered a clean 404: no such digest there."""

    def __init__(self, origin: str, kind: str, digest: str):
        self.origin = origin
        self.kind = kind
        self.digest = digest
        super().__init__(f"{origin} has no {kind} blob {digest}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


def _split_origin(origin: str) -> tuple:
    parts = urlsplit(origin)
    if parts.scheme not in ("http", "https") or not parts.hostname:
        raise RemoteStoreError(f"bad blob origin {origin!r}")
    return parts.hostname, parts.port or (443 if parts.scheme == "https" else 80)


def fetch_blob(
    origin: str,
    kind: str,
    digest: str,
    timeout: float = 30.0,
    retries: int = 2,
) -> bytes:
    """Fetch one store entry's raw bytes from ``origin``.

    Raises:
        BlobNotFound: clean 404 from the origin.
        RemoteStoreError: transport failure after retries, or any other
            non-200 answer.
    """
    host, port = _split_origin(origin)
    registry = engine_registry()
    registry.counter("fleet_remote_fetch_total", "blob fetches attempted").inc()
    client = ServiceClient(host, port, timeout=timeout, retries=retries)
    try:
        with get_tracer().span("fleet.fetch_blob", kind=kind, digest=digest[:12]):
            status, body = client.blob(kind, digest)
    except RequestFailed as exc:
        registry.counter("fleet_remote_error_total", "blob fetches failed").inc()
        raise RemoteStoreError(f"fetching {kind} {digest} from {origin}: {exc}") from exc
    finally:
        client.close()
    if status == 404:
        registry.counter("fleet_remote_miss_total", "blob fetches answered 404").inc()
        raise BlobNotFound(origin, kind, digest)
    if status != 200 or not isinstance(body, bytes):
        registry.counter("fleet_remote_error_total", "blob fetches failed").inc()
        raise RemoteStoreError(
            f"fetching {kind} {digest} from {origin}: status {status}"
        )
    registry.counter("fleet_remote_bytes_total", "blob bytes fetched").inc(len(body))
    return body


def replicate_traces(
    store: Optional[TraceStore],
    origin: Optional[str],
    digests: Iterable[str],
    timeout: float = 30.0,
) -> Set[str]:
    """Ensure trace blobs are local, fetching the rest from ``origin``.

    Returns:
        The digests that are available *nowhere* — absent locally and
        404 (or unfetchable) at the origin.  The caller decides whether
        those recompute (``"fallback"``) or fail (``"require"``);
        storeless workers report every digest missing, for the same
        reason.
    """
    log = get_logger("fleet")
    missing: Set[str] = set()
    for digest in digests:
        if store is not None and store.has_blob("trace", digest):
            continue
        if store is None or origin is None:
            missing.add(digest)
            continue
        try:
            data = fetch_blob(origin, "trace", digest, timeout=timeout)
        except (BlobNotFound, RemoteStoreError) as exc:
            log.warning(
                "blob.miss",
                digest=digest[:12],
                origin=origin,
                error=type(exc).__name__,
            )
            missing.add(digest)
            continue
        log.info(
            "blob.replicated", digest=digest[:12], origin=origin, bytes=len(data)
        )
        store.ingest_blob("trace", digest, data)
    return missing
