"""Fleet smoke test: 1 frontend + 2 worker subprocesses, clean exit.

The subprocess variant of ``tests/test_fleet_e2e.py`` — it exercises
the deployment path the in-process tests cannot: real ``repro serve``
processes, worker **self-registration** (``--register``), real TCP,
cross-process telemetry shipping, and SIGINT shutdown of the whole
fleet.  CI runs this as its fleet-smoke job (``make fleet-smoke``).

Checks, in order:

1. two workers self-register and turn up alive in ``/v1/fleet/status``;
2. three concurrent duplicate 40-cell sweeps (4 workloads x 10 stream
   counts) all answer 200 with full results — and the frontend's
   ``cells_executed_total`` says each unique cell was executed exactly
   **once fleet-wide** (cluster-wide coalescing);
3. the dispatch log attributes every cell to a worker (no local
   fallback), and — after a few extra seed-shifted rounds if needed —
   covers **>=2 distinct worker pids**;
4. a merged run manifest built from the dispatch log validates and
   carries the per-worker provenance;
5. SIGINT stops all three processes with exit code 0.

Exit code 0 on success; any failure prints the reason and exits 1.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

import asyncio

from repro.obs.manifest import ManifestBuilder, load_manifest
from repro.service.client import ServiceClient, arequest

_SRC_DIR = Path(__file__).resolve().parents[2]

WORKLOADS = ["sweep", "stride", "interleaved", "random"]
N_STREAMS = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12]
SCALE = 0.25
DUPLICATE_SWEEPS = 3


def _spawn(args: List[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--jobs", "1", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _read_address(proc: subprocess.Popen, timeout_s: float = 30.0) -> Tuple[str, int]:
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"server exited before binding (rc={proc.poll()})")
        if "listening on" in line:
            address = line.rsplit(" ", 1)[-1].strip()
            host, _, port = address.rpartition(":")
            return host, int(port)
    raise RuntimeError("server did not print its listening line in time")


def _wait_for_workers(client: ServiceClient, want: int, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body = client.fleet_status()
        if status == 200 and body.get("alive", 0) >= want:
            return
        time.sleep(0.25)
    raise RuntimeError(f"fewer than {want} workers registered within {timeout_s}s")


def _sweep_round(host: str, port: int, seed: int) -> List[Tuple[int, dict]]:
    payload = {
        "workloads": WORKLOADS,
        "n_streams": N_STREAMS,
        "scale": SCALE,
        "seed": seed,
        "timeout_s": 300,
    }

    async def round_():
        return await asyncio.gather(
            *(
                arequest(host, port, "POST", "/v1/sweep", payload, timeout=360)
                for _ in range(DUPLICATE_SWEEPS)
            )
        )

    return asyncio.run(round_())


def main() -> int:
    """Boot the fleet, run the checks, SIGINT everything; 0 on success."""
    grid_cells = len(WORKLOADS) * len(N_STREAMS)
    procs: List[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as root:
        try:
            frontend = _spawn(["--trace-store", f"{root}/front", "--max-queue", "64"])
            procs.append(frontend)
            host, port = _read_address(frontend)
            frontend_url = f"http://{host}:{port}"
            for i in range(2):
                worker = _spawn(
                    [
                        "--worker",
                        "--trace-store",
                        f"{root}/w{i}",
                        "--register",
                        frontend_url,
                    ]
                )
                procs.append(worker)
                _read_address(worker)

            client = ServiceClient(host, port, timeout=120.0)
            _wait_for_workers(client, want=2)

            # duplicate concurrent sweeps: every response full, every
            # unique cell executed exactly once across the whole fleet
            responses = _sweep_round(host, port, seed=0)
            for status, body in responses:
                if status != 200 or not body.get("ok") or body.get("errors"):
                    raise RuntimeError(f"sweep failed: {status} {body}")
                if len(body["results"]) != grid_cells:
                    raise RuntimeError(
                        f"expected {grid_cells} results, got {len(body['results'])}"
                    )
            metrics = client.metrics()
            executed = metrics["counters"]["cells_executed_total"]
            if executed != grid_cells:
                raise RuntimeError(
                    f"coalescing broke: {executed} cells executed fleet-wide "
                    f"for {grid_cells} unique cells x {DUPLICATE_SWEEPS} sweeps"
                )

            # dispatch log: every cell ran on a worker, none locally;
            # extra seed-shifted rounds until >=2 pids are covered
            # (rendezvous may place one seed's 4 traces on one worker)
            status, fleet = client.fleet_status()
            if status != 200:
                raise RuntimeError(f"fleet status failed: {status}")
            cells = fleet["cells"]
            keys = [tuple(c["key"]) for c in cells]
            if len(keys) != grid_cells or len(set(keys)) != grid_cells:
                raise RuntimeError(
                    f"dispatch log has {len(keys)} cells "
                    f"({len(set(keys))} unique), want {grid_cells}"
                )
            if any(c["origin"] == "local" for c in cells):
                raise RuntimeError("cells fell back to local execution")
            for round_seed in range(1, 7):
                if len({c["worker"] for c in cells if c["worker"]}) >= 2:
                    break
                _sweep_round(host, port, seed=round_seed)
                _, fleet = client.fleet_status()
                cells = fleet["cells"]
            pids = {c["worker"] for c in cells if c["worker"]}
            if len(pids) < 2:
                raise RuntimeError(f"only one worker pid in the dispatch log: {pids}")

            # merged manifest: one record covering the whole fleet
            manifest = ManifestBuilder("fleet-smoke", argv=sys.argv)
            for cell in cells:
                manifest.add_cell(
                    tuple(cell["key"]),
                    cell["workload"],
                    source=cell["source"],
                    wall_time_s=cell["wall_time_s"],
                    worker=cell["worker"],
                    ok=cell["ok"],
                    error=cell["error"],
                    origin=cell["origin"],
                )
            manifest.set_meta(
                frontend=frontend_url,
                workers=[w["url"] for w in fleet["workers"]],
            )
            path = manifest.write(f"{root}/manifests")
            reloaded = load_manifest(path)
            manifest_pids = {
                c["worker"]
                for c in reloaded["cells"]
                if c["worker"] and c.get("origin") != "local"
            }
            if len(manifest_pids) < 2:
                raise RuntimeError(
                    f"merged manifest covers {len(manifest_pids)} worker pid(s)"
                )

            # whole-fleet shutdown: SIGINT everyone, want rc 0
            for proc in procs:
                proc.send_signal(signal.SIGINT)
            for proc in procs:
                rc = proc.wait(timeout=30)
                if rc != 0:
                    raise RuntimeError(f"process exited {rc} on SIGINT (want 0)")
            print(
                f"fleet smoke OK: {grid_cells} unique cells executed once across "
                f"{len(pids)} workers (pids {sorted(pids)}), manifest {path.name}, "
                "clean shutdown"
            )
            return 0
        except Exception as exc:
            print(f"fleet smoke FAILED: {exc}", file=sys.stderr)
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                assert proc.stdout is not None
                tail = proc.stdout.read() or ""
                if tail:
                    print(
                        f"--- output of pid {proc.pid} ---\n" + tail[-3000:],
                        file=sys.stderr,
                    )
            return 1
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
