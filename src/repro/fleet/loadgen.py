"""Zipf load generator: the fleet's "millions of users" stand-in.

Real query traffic over a config grid is heavily skewed — a few popular
(workload, config) cells dominate while a long tail trickles — so the
generator samples each simulated client's requests from a Zipf
distribution over a fixed config universe.  The skew is what makes the
serving tier interesting: popular cells should collapse into the
frontend's result LRU and coalescer while the tail fans out across the
worker fleet.

The generator is a classic open-pool harness: ``clients`` logical
sessions each issue ``requests_per_client`` single-cell ``/v1/run``
requests, with at most ``max_inflight`` requests on the wire at once
(thousands of sessions multiplexed over a bounded connection window,
the way wrk/vegeta drive load).  Everything is seeded and deterministic
apart from service-side timing.

Used by ``benchmarks/bench_fleet.py`` (``make fleet-bench``), which
records the results as ``BENCH_PR7.json``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import asyncio

from repro.service.client import arequest

__all__ = ["LoadSpec", "zipf_weights", "build_universe", "run_load"]


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation run, fully determined by its fields."""

    clients: int = 2000
    requests_per_client: int = 1
    max_inflight: int = 256
    workloads: Tuple[str, ...] = ("sweep", "stride", "interleaved", "random")
    n_streams: Tuple[int, ...] = tuple(range(1, 31))
    scale: float = 0.25
    zipf_s: float = 1.1
    seed: int = 0
    timeout_s: float = 600.0

    def __post_init__(self) -> None:
        if self.clients < 1 or self.requests_per_client < 1:
            raise ValueError("clients and requests_per_client must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")


def zipf_weights(n: int, s: float) -> List[float]:
    """Unnormalised Zipf weights: rank r (1-based) gets ``1 / r**s``."""
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def build_universe(spec: LoadSpec) -> List[dict]:
    """The config universe as ready-to-send ``/v1/run`` payloads.

    Rank order (and hence popularity) interleaves workloads so the hot
    head of the distribution spans several trace digests — the skew
    should stress the cache tier, not pin a single worker.
    """
    return [
        {
            "workload": name,
            "scale": spec.scale,
            "config": {"n_streams": n},
            "timeout_s": spec.timeout_s,
        }
        for n in spec.n_streams
        for name in spec.workloads
    ]


async def run_load(host: str, port: int, spec: LoadSpec) -> dict:
    """Drive one load run against a frontend; returns the measurements.

    Every request's status and wall time are recorded; nothing is
    retried (the point is to observe the service's own behaviour under
    pressure, 429s included).
    """
    universe = build_universe(spec)
    weights = zipf_weights(len(universe), spec.zipf_s)
    rng = random.Random(spec.seed)
    total = spec.clients * spec.requests_per_client
    choices = rng.choices(range(len(universe)), weights=weights, k=total)
    window = asyncio.Semaphore(spec.max_inflight)
    statuses: Dict[int, int] = {}
    latencies_ms: List[float] = []
    touched = {index for index in choices}

    async def one(index: int) -> None:
        payload = universe[index]
        async with window:
            started = time.perf_counter()
            try:
                status, _ = await arequest(
                    host, port, "POST", "/v1/run", payload, timeout=spec.timeout_s
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                status = -1  # transport failure, counted, never raised
            latencies_ms.append(1e3 * (time.perf_counter() - started))
            statuses[status] = statuses.get(status, 0) + 1

    started = time.perf_counter()
    await asyncio.gather(*(one(index) for index in choices))
    elapsed = time.perf_counter() - started

    latencies_ms.sort()

    def percentile(q: float) -> float:
        if not latencies_ms:
            return 0.0
        rank = min(len(latencies_ms) - 1, int(q * (len(latencies_ms) - 1)))
        return round(latencies_ms[rank], 2)

    return {
        "clients": spec.clients,
        "requests_per_client": spec.requests_per_client,
        "max_inflight": spec.max_inflight,
        "requests": total,
        "universe_cells": len(universe),
        "unique_cells_requested": len(touched),
        "zipf_s": spec.zipf_s,
        "seed": spec.seed,
        "seconds": round(elapsed, 3),
        "requests_per_second": round(total / elapsed, 1),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "latency_ms": {
            "p50": percentile(0.50),
            "p95": percentile(0.95),
            "p99": percentile(0.99),
            "max": round(latencies_ms[-1], 2) if latencies_ms else 0.0,
        },
    }
