"""Sharded worker-fleet execution tier behind the simulation service.

One frontend ``repro serve`` process owns admission, coalescing and
batching (PR 2); this package adds the scale-out layer behind it:

* :mod:`repro.fleet.hashing` — rendezvous (highest-random-weight)
  placement of grid cells onto workers by **trace digest**, so every
  cell of one workload lands on the worker whose caches are warm for
  that trace, and membership changes only move the cells they must.
* :mod:`repro.fleet.dispatch` — the frontend-side
  :class:`~repro.fleet.dispatch.FleetDispatcher`: per-worker bounded
  in-flight windows, heartbeat liveness over ``/healthz``, request
  timeouts with exponential-backoff retry, failover re-dispatch of a
  dead worker's cells to survivors, and local fallback when no worker
  is alive (results stay bit-identical either way).
* :mod:`repro.fleet.remote` — the replicated trace-store layer: a
  worker that misses a trace locally fetches the raw content-addressed
  blob by digest from the frontend (``GET /v1/blob/...``) and ingests
  it into its own :class:`~repro.trace.store.TraceStore`.
* :mod:`repro.fleet.loadgen` — the zipf load generator used by
  ``make fleet-bench`` (BENCH_PR7.json) as the "millions of users"
  proxy.

See docs/fleet.md for topology, failure semantics and how to run a
local 1xN fleet.
"""

from repro.fleet.dispatch import FleetDispatcher, WorkerHandle
from repro.fleet.hashing import rendezvous_owner, rendezvous_rank
from repro.fleet.remote import BlobNotFound, RemoteStoreError, fetch_blob, replicate_traces

__all__ = [
    "FleetDispatcher",
    "WorkerHandle",
    "rendezvous_owner",
    "rendezvous_rank",
    "BlobNotFound",
    "RemoteStoreError",
    "fetch_blob",
    "replicate_traces",
]
