"""Rendezvous (highest-random-weight) hashing for cell placement.

The dispatcher shards grid cells across workers by **trace digest**:
every cell replaying the same miss trace should land on the same worker
so its in-memory :class:`~repro.sim.runner.MissTraceCache` and on-disk
:class:`~repro.trace.store.TraceStore` stay warm, and adding/removing a
worker should move only the traces it must (1/N of them), not reshuffle
everything the way modular hashing would.

Rendezvous hashing gives both properties with no ring state: score
every ``(key, node)`` pair with a stable hash and pick the
highest-scoring node.  Removing a node only reassigns the keys it
owned (each to its runner-up), and every surviving assignment is
untouched — exactly the failover semantics the dispatcher wants.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

__all__ = ["rendezvous_score", "rendezvous_rank", "rendezvous_owner"]


def rendezvous_score(key: str, node: str) -> int:
    """Stable 64-bit score of one (key, node) pair.

    sha256 rather than ``hash()``: placement must agree across
    processes and Python runs (PYTHONHASHSEED randomises ``hash``).
    """
    digest = hashlib.sha256(f"{key}\x00{node}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_rank(key: str, nodes: Sequence[str]) -> List[str]:
    """All nodes ordered by preference for ``key`` (best first).

    The full ranking is the failover order: when the owner is dead, the
    runner-up inherits the key, and so on — deterministically, so every
    frontend (and every retry) picks the same survivor.
    """
    return sorted(
        nodes, key=lambda node: (rendezvous_score(key, node), node), reverse=True
    )


def rendezvous_owner(key: str, nodes: Sequence[str]) -> Optional[str]:
    """The preferred node for ``key``, or None when no nodes exist."""
    if not nodes:
        return None
    return max(nodes, key=lambda node: (rendezvous_score(key, node), node))
