"""Frontend-side fleet dispatcher: shard, window, retry, fail over.

The :class:`FleetDispatcher` slots in behind the service's micro-batcher
(:meth:`repro.service.server.SimulationService._run_batch`): a flushed
batch of :class:`~repro.sim.parallel.SweepTask` cells is sharded across
the registered workers by **trace digest** (rendezvous hashing — the
same trace always lands on the same worker while membership holds, so
its :class:`~repro.sim.runner.MissTraceCache` and local store stay
warm), each shard travels as one ``POST /v1/chunk`` request, and the
decoded results are reassembled in task order.

Reliability mechanics, in dispatch order:

* **bounded in-flight window** — at most ``max_inflight`` chunk
  requests outstanding per worker; excess shards queue on the window
  semaphore, not on the worker.
* **timeout + exponential-backoff retry** — a chunk that times out or
  fails at transport level is retried against the same worker up to
  ``max_attempts`` times with doubling backoff.
* **failover** — when attempts are exhausted the worker is marked dead
  and the shard's cells are re-sharded (rendezvous again) across the
  surviving workers; with no survivors they run on the **local
  fallback** runner.  Replays are deterministic and content-addressed,
  so results are bit-identical whichever path executed them.
* **heartbeats** — a background task polls every worker's ``/healthz``;
  ``dead_after`` consecutive failures mark it dead (skipped by the
  sharder), and a later successful heartbeat revives it.

Every chunk response ships the worker's drained telemetry (metrics
snapshot + spans); the dispatcher merges both into this process's
engine registry and tracer, so ``/metrics``, manifests and Perfetto
traces cover the whole fleet with per-worker provenance.
"""

from __future__ import annotations

import re
import time
from collections import deque
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import asyncio

from repro.caches.cache import CacheConfig
from repro.fleet.hashing import rendezvous_owner
from repro.obs.context import bind_trace
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, engine_registry
from repro.obs.spans import get_tracer
from repro.service import api
from repro.sim.parallel import SweepTask, TaskError
from repro.sim.results import RunResult
from repro.sim.runner import resolve_workload_ref
from repro.trace.store import trace_digest

__all__ = ["WorkerHandle", "FleetDispatcher"]

CellResult = Union[RunResult, TaskError]
LocalRunner = Callable[[List[SweepTask]], Awaitable[Sequence[CellResult]]]


def _metric_suffix(url: str) -> str:
    """A worker URL as a Prometheus-safe metric-name suffix."""
    bare = url.split("://", 1)[-1]
    return re.sub(r"[^0-9A-Za-z]+", "_", bare).strip("_")


class WorkerHandle:
    """Dispatcher-side state of one registered worker."""

    def __init__(self, url: str, max_inflight: int):
        self.url = url.rstrip("/")
        parts = self.url.split("://", 1)[-1]
        host, _, port = parts.rpartition(":")
        self.host = host or parts
        self.port = int(port) if port else 80
        self.max_inflight = max_inflight
        self.window = asyncio.Semaphore(max_inflight)
        self.alive = True
        self.strikes = 0
        self.pid: Optional[int] = None
        # Two clocks per heartbeat: the unix stamp is display-only (it
        # jumps with NTP steps and manual clock changes); every liveness
        # *decision* reads the monotonic stamp via heartbeat_age_s().
        self.last_heartbeat_unix: Optional[float] = None
        self.last_heartbeat_mono: Optional[float] = None
        self.inflight = 0
        self.dispatched_chunks = 0
        self.dispatched_cells = 0
        self.retries = 0
        self.failed_over_cells = 0
        self.metric_suffix = _metric_suffix(self.url)

    def mark_alive(self, pid: Optional[int]) -> None:
        self.alive = True
        self.strikes = 0
        self.pid = pid
        self.last_heartbeat_unix = time.time()
        self.last_heartbeat_mono = time.monotonic()

    def heartbeat_age_s(self) -> Optional[float]:
        """Seconds since the last successful heartbeat, or None before
        the first one.  Monotonic — immune to wall-clock steps — so it
        is safe to compare against staleness thresholds."""
        if self.last_heartbeat_mono is None:
            return None
        return time.monotonic() - self.last_heartbeat_mono

    def mark_strike(self, dead_after: int) -> None:
        self.strikes += 1
        if self.strikes >= dead_after:
            self.alive = False

    def mark_dead(self) -> None:
        self.alive = False
        self.strikes = max(self.strikes, 1)

    def summary(self) -> dict:
        return {
            "url": self.url,
            "alive": self.alive,
            "pid": self.pid,
            "strikes": self.strikes,
            "inflight": self.inflight,
            "dispatched_chunks": self.dispatched_chunks,
            "dispatched_cells": self.dispatched_cells,
            "retries": self.retries,
            "failed_over_cells": self.failed_over_cells,
            "last_heartbeat_unix": self.last_heartbeat_unix,
            "heartbeat_age_s": self.heartbeat_age_s(),
        }


class FleetDispatcher:
    """Shards batches across workers; falls back to local execution.

    Args:
        local_runner: coroutine executing tasks in this process (the
            service's single-host pool path) — the zero-worker fallback
            and the failover path of last resort.
        l1_config/keep_pcs: must match the workers' configuration; they
            feed the trace digests cells are sharded by.
        workers: initial worker base URLs; more may join at runtime via
            :meth:`register` (``POST /v1/fleet/register``).
        blob_origin: base URL workers may fetch missing trace blobs
            from (the frontend fills in its own bound address).
        fetch_policy: forwarded to workers (see ``api.ChunkRequest``).
        max_inflight: chunk requests in flight per worker.
        chunk_timeout_s: per-attempt deadline of one chunk request.
        max_attempts: attempts per worker before failing over.
        heartbeat_s: liveness poll period; 0 disables the background
            heartbeat task (tests drive :meth:`heartbeat` directly).
        dead_after: consecutive heartbeat failures before a worker is
            declared dead.
    """

    def __init__(
        self,
        local_runner: LocalRunner,
        l1_config: Optional[CacheConfig] = None,
        keep_pcs: bool = False,
        workers: Sequence[str] = (),
        blob_origin: Optional[str] = None,
        fetch_policy: str = "fallback",
        max_inflight: int = 4,
        chunk_timeout_s: float = 120.0,
        max_attempts: int = 3,
        backoff_s: float = 0.05,
        heartbeat_s: float = 2.0,
        dead_after: int = 3,
        registry: Optional[MetricsRegistry] = None,
        cell_log_entries: int = 8192,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        self.local_runner = local_runner
        self.l1_config = l1_config or CacheConfig.paper_l1()
        self.keep_pcs = keep_pcs
        self.blob_origin = blob_origin
        self.fetch_policy = fetch_policy
        self.max_inflight = max_inflight
        self.chunk_timeout_s = chunk_timeout_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.heartbeat_s = heartbeat_s
        self.dead_after = dead_after
        self.workers: Dict[str, WorkerHandle] = {}
        self.cell_log: deque = deque(maxlen=cell_log_entries)
        self._heartbeat_task: Optional[asyncio.Task] = None
        m = registry if registry is not None else engine_registry()
        self._m = m
        self._c_dispatch = m.counter("fleet_dispatch_total", "chunk requests dispatched")
        self._c_dispatch_cells = m.counter(
            "fleet_dispatch_cells_total", "cells dispatched to workers"
        )
        self._c_retry = m.counter("fleet_retry_total", "chunk dispatch retries")
        self._c_failover = m.counter(
            "fleet_failover_cells_total", "cells re-dispatched off a dead worker"
        )
        self._c_local = m.counter(
            "fleet_local_fallback_cells_total", "cells executed on the local fallback"
        )
        self._h_chunk = m.histogram("fleet_chunk_ms", "chunk round-trip wall time, ms")
        self._log = get_logger("fleet")
        for url in workers:
            self.register(url)

    @property
    def chunk_latency(self):
        """The shard round-trip histogram (``/v1/debug`` reads it)."""
        return self._h_chunk

    # -- membership --------------------------------------------------------

    def register(self, url: str) -> WorkerHandle:
        """Add (or re-arm) a worker; idempotent per URL."""
        url = url.rstrip("/")
        handle = self.workers.get(url)
        if handle is None:
            handle = WorkerHandle(url, self.max_inflight)
            self.workers[url] = handle
        else:
            # Re-registration is a liveness claim (a restarted worker
            # announcing itself); give it a clean slate.
            handle.mark_alive(handle.pid)
        return handle

    def alive_workers(self) -> List[WorkerHandle]:
        return [w for w in self.workers.values() if w.alive]

    def __len__(self) -> int:
        return len(self.workers)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self.heartbeat_s > 0 and self._heartbeat_task is None:
            self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def close(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None

    # -- heartbeats --------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_s)
            try:
                await self.heartbeat()
            except Exception:
                # The liveness prober must never die; individual worker
                # failures are already recorded as strikes.
                pass

    async def heartbeat(self) -> None:
        """One liveness round: poll every worker's ``/healthz``."""
        from repro.service.client import arequest

        async def probe(worker: WorkerHandle) -> None:
            try:
                status, body = await arequest(
                    worker.host,
                    worker.port,
                    "GET",
                    "/healthz",
                    timeout=min(5.0, max(self.heartbeat_s, 1.0)),
                )
                ok = (
                    status == 200
                    and isinstance(body, dict)
                    and body.get("ok") is True
                    and body.get("v") == api.WIRE_VERSION
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                ok = False
                body = None
            if ok:
                worker.mark_alive(body.get("pid"))
            else:
                worker.mark_strike(self.dead_after)
            self._gauge_depth(worker)

        await asyncio.gather(*(probe(w) for w in self.workers.values()))

    # -- metrics helpers ---------------------------------------------------

    def _gauge_depth(self, worker: WorkerHandle) -> None:
        self._m.gauge(
            f"fleet_worker_queue_depth_{worker.metric_suffix}",
            f"in-flight chunks on {worker.url}",
        ).set(worker.inflight)
        self._m.gauge(
            f"fleet_worker_alive_{worker.metric_suffix}",
            f"1 when {worker.url} is alive",
        ).set(1.0 if worker.alive else 0.0)

    def _observe_chunk(self, worker: WorkerHandle, elapsed_ms: float) -> None:
        self._h_chunk.observe(elapsed_ms)
        self._m.histogram(
            f"fleet_worker_chunk_ms_{worker.metric_suffix}",
            f"chunk round-trip wall time on {worker.url}, ms",
        ).observe(elapsed_ms)

    # -- dispatch ----------------------------------------------------------

    def _task_trace_digest(self, task: SweepTask) -> str:
        name, scale, seed, _ = resolve_workload_ref(task.workload, task.scale, task.seed)
        return trace_digest(name, scale, seed, self.l1_config, self.keep_pcs)

    @staticmethod
    def _encode_cells(tasks: Sequence[SweepTask]) -> List[dict]:
        import dataclasses

        from repro.mechanisms import MechanismConfig, mechanism_to_dict
        from repro.sim.parallel import _json_key

        cells = []
        for task in tasks:
            name, scale, seed, _ = resolve_workload_ref(
                task.workload, task.scale, task.seed
            )
            cell = {
                "key": _json_key(task.key),
                "workload": name,
                "scale": scale,
                "seed": seed,
            }
            if task.trace_id is not None:
                # Optional v1 field: old workers build cells with
                # raw.get(...) and simply ignore it.
                cell["trace_id"] = task.trace_id
            if isinstance(task.config, MechanismConfig):
                cell["mechanism"] = mechanism_to_dict(task.config)
            else:
                cell["config"] = dataclasses.asdict(task.config)
            cells.append(cell)
        return cells

    async def run_batch(self, tasks: Sequence[SweepTask]) -> List[CellResult]:
        """Execute one batch across the fleet; results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        alive = self.alive_workers()
        if not alive:
            return await self._run_local(tasks)
        with get_tracer().span("fleet.batch", cells=len(tasks), workers=len(alive)):
            groups = self._shard(tasks, alive)
            results: Dict[int, CellResult] = {}

            async def run_group(worker: WorkerHandle, indexed) -> None:
                indices = [i for i, _ in indexed]
                shard = [t for _, t in indexed]
                outcome = await self._dispatch_shard(worker, shard, excluded=set())
                for index, result in zip(indices, outcome):
                    results[index] = result

            await asyncio.gather(
                *(run_group(worker, indexed) for worker, indexed in groups)
            )
        return [results[i] for i in range(len(tasks))]

    def _shard(
        self, tasks: Sequence[SweepTask], alive: Sequence[WorkerHandle]
    ) -> List[Tuple[WorkerHandle, List[Tuple[int, SweepTask]]]]:
        by_url = {w.url: w for w in alive}
        urls = sorted(by_url)
        grouped: Dict[str, List[Tuple[int, SweepTask]]] = {}
        for index, task in enumerate(tasks):
            owner = rendezvous_owner(self._task_trace_digest(task), urls)
            grouped.setdefault(owner, []).append((index, task))
        return [(by_url[url], indexed) for url, indexed in grouped.items()]

    async def _run_local(self, tasks: List[SweepTask]) -> List[CellResult]:
        self._c_local.inc(len(tasks))
        self._log.info("fleet.local_fallback", cells=len(tasks))
        results = list(await self.local_runner(tasks))
        self._log_cells(tasks, results, origin="local")
        return results

    async def _dispatch_shard(
        self,
        worker: WorkerHandle,
        shard: List[SweepTask],
        excluded: Set[str],
    ) -> List[CellResult]:
        """Dispatch one shard to ``worker``, retrying then failing over."""
        payload = {
            "v": api.WIRE_VERSION,
            "cells": self._encode_cells(shard),
            "timeout_s": self.chunk_timeout_s,
            "fetch_policy": self.fetch_policy,
        }
        if self.blob_origin:
            payload["blob_origin"] = self.blob_origin
        # A shard usually serves one request; when it does, the dispatch
        # span joins that request's trace so the timeline reads
        # admission -> dispatch -> worker cell in one arrowed chain.
        traces = {t.trace_id for t in shard if t.trace_id}
        shared = next(iter(traces)) if len(traces) == 1 else None
        backoff = self.backoff_s
        with bind_trace(shared), get_tracer().span(
            "fleet.dispatch", worker=worker.url, cells=len(shard)
        ):
            for attempt in range(self.max_attempts):
                if not worker.alive:
                    break  # the heartbeat (or another shard) saw it die
                if attempt:
                    self._c_retry.inc()
                    worker.retries += 1
                    self._log.warning(
                        "fleet.retry",
                        worker=worker.url,
                        attempt=attempt,
                        cells=len(shard),
                    )
                    await asyncio.sleep(backoff)
                    backoff *= 2
                outcome = await self._attempt_chunk(worker, shard, payload)
                if outcome is not None:
                    return outcome
        worker.mark_dead()
        self._gauge_depth(worker)
        self._log.warning(
            "fleet.worker_dead", worker=worker.url, cells=len(shard)
        )
        return await self._failover(worker, shard, excluded)

    async def _attempt_chunk(
        self, worker: WorkerHandle, shard: List[SweepTask], payload: dict
    ) -> Optional[List[CellResult]]:
        """One chunk attempt; None means 'retry-worthy failure'."""
        from repro.service.client import arequest

        async with self._window(worker):
            self._c_dispatch.inc()
            self._c_dispatch_cells.inc(len(shard))
            worker.dispatched_chunks += 1
            worker.dispatched_cells += len(shard)
            started = time.perf_counter()
            try:
                status, body = await arequest(
                    worker.host,
                    worker.port,
                    "POST",
                    "/v1/chunk",
                    payload,
                    timeout=self.chunk_timeout_s,
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                return None
            finally:
                self._observe_chunk(worker, 1e3 * (time.perf_counter() - started))
        if status != 200 or not isinstance(body, dict) or not body.get("ok"):
            return None
        try:
            return self._decode_chunk(worker, shard, body)
        except (KeyError, TypeError, ValueError):
            return None

    def _window(self, worker: WorkerHandle):
        dispatcher = self

        class _Window:
            async def __aenter__(self):
                await worker.window.acquire()
                worker.inflight += 1
                dispatcher._gauge_depth(worker)

            async def __aexit__(self, *exc):
                worker.inflight -= 1
                worker.window.release()
                dispatcher._gauge_depth(worker)

        return _Window()

    def _decode_chunk(
        self, worker: WorkerHandle, shard: List[SweepTask], body: dict
    ) -> List[CellResult]:
        cells = body["cells"]
        if len(cells) != len(shard):
            raise ValueError(
                f"chunk returned {len(cells)} cells for {len(shard)} tasks"
            )
        results: List[CellResult] = []
        for task, cell in zip(shard, cells):
            if cell.get("ok", False):
                results.append(api.decode_cell_result(cell))
            else:
                error = api.decode_task_error(cell.get("error", {}))
                # Re-key from the task: the frontend's key is canonical
                # (tuples, not the JSON lists that crossed the wire).
                results.append(
                    TaskError(
                        key=task.key,
                        workload=error.workload,
                        error=error.error,
                        details=error.details,
                        wall_time_s=error.wall_time_s,
                        worker=error.worker,
                        trace_id=error.trace_id,
                    )
                )
        telemetry = body.get("telemetry") or {}
        engine_registry().merge(telemetry.get("metrics") or {})
        get_tracer().extend(telemetry.get("spans") or [])
        self._log_cells(shard, results, origin=worker.url)
        return results

    async def _failover(
        self,
        worker: WorkerHandle,
        shard: List[SweepTask],
        excluded: Set[str],
    ) -> List[CellResult]:
        """Re-shard a dead worker's cells across the survivors."""
        excluded = excluded | {worker.url}
        survivors = [w for w in self.alive_workers() if w.url not in excluded]
        self._c_failover.inc(len(shard))
        worker.failed_over_cells += len(shard)
        if not survivors:
            return await self._run_local(shard)
        by_url = {w.url: w for w in survivors}
        urls = sorted(by_url)
        grouped: Dict[str, List[Tuple[int, SweepTask]]] = {}
        for index, task in enumerate(shard):
            owner = rendezvous_owner(self._task_trace_digest(task), urls)
            grouped.setdefault(owner, []).append((index, task))
        results: Dict[int, CellResult] = {}

        async def run_subgroup(url: str, indexed) -> None:
            indices = [i for i, _ in indexed]
            subshard = [t for _, t in indexed]
            outcome = await self._dispatch_shard(by_url[url], subshard, excluded)
            for index, result in zip(indices, outcome):
                results[index] = result

        await asyncio.gather(
            *(run_subgroup(url, indexed) for url, indexed in grouped.items())
        )
        return [results[i] for i in range(len(shard))]

    # -- provenance --------------------------------------------------------

    def _log_cells(
        self, tasks: Sequence[SweepTask], results: Sequence[CellResult], origin: str
    ) -> None:
        for task, result in zip(tasks, results):
            if isinstance(result, RunResult):
                self.cell_log.append(
                    {
                        "key": task.key,
                        "workload": result.workload,
                        "ok": True,
                        "error": "",
                        "wall_time_s": result.wall_time_s,
                        "worker": result.worker,
                        "source": result.source,
                        "origin": origin,
                    }
                )
            elif isinstance(result, TaskError):
                self.cell_log.append(
                    {
                        "key": task.key,
                        "workload": result.workload,
                        "ok": False,
                        "error": result.error,
                        "wall_time_s": result.wall_time_s,
                        "worker": result.worker,
                        "source": "error",
                        "origin": origin,
                    }
                )

    def status(self) -> dict:
        """Fleet summary for ``GET /v1/fleet/status`` (JSON-safe)."""
        from repro.sim.parallel import _json_key

        return {
            "workers": [w.summary() for w in self.workers.values()],
            "alive": sum(1 for w in self.workers.values() if w.alive),
            "fetch_policy": self.fetch_policy,
            "blob_origin": self.blob_origin,
            "cells": [
                {**cell, "key": _json_key(cell["key"])} for cell in self.cell_log
            ],
        }
