"""Bandwidth budgeting: when should the filter be on?

The paper's Section 6 conclusion: enable the filter when memory
bandwidth is scarce; disable it when the memory system can absorb the
speculation, because the filter costs a little hit rate.  This example
quantifies that trade-off across the fifteen benchmarks under a simple
bandwidth model: a memory system that can sustain ``budget`` times the
program's demand traffic.

Usage:
    python examples/bandwidth_budget.py [budget]   # default 1.3
"""

import sys

from repro import StreamConfig
from repro.sim import run_result
from repro.workloads import PAPER_BENCHMARKS


def effective_hit_rate(hit_pct: float, eb_pct: float, budget: float) -> float:
    """Hit rate after throttling prefetches that exceed the budget.

    If streams want (1 + EB) units of traffic per demand unit but only
    ``budget`` units exist, a fraction of prefetches cannot issue; hits
    scale down proportionally (a first-order model — the paper itself
    stays timing-free).
    """
    wanted = 1.0 + eb_pct / 100.0
    if wanted <= budget:
        return hit_pct
    # Prefetch traffic is (wanted - 1); only (budget - 1) fits.
    usable = max(0.0, budget - 1.0) / (wanted - 1.0)
    return hit_pct * usable


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 1.3

    print(f"memory bandwidth budget: {budget:.2f}x demand traffic")
    print()
    header = (
        f"{'bench':8s} {'unfiltered':>21s} {'filtered':>21s}   better"
    )
    print(header)
    print(f"{'':8s} {'raw hit / effective':>21s} {'raw hit / effective':>21s}")
    print("-" * len(header))

    filter_wins = 0
    for name in PAPER_BENCHMARKS:
        plain = run_result(name, StreamConfig.jouppi(n_streams=10))
        filt = run_result(name, StreamConfig.filtered(n_streams=10))
        plain_eff = effective_hit_rate(plain.hit_rate_percent, plain.eb_percent, budget)
        filt_eff = effective_hit_rate(filt.hit_rate_percent, filt.eb_percent, budget)
        winner = "filter" if filt_eff >= plain_eff else "plain"
        if winner == "filter":
            filter_wins += 1
        print(
            f"{name:8s} {plain.hit_rate_percent:9.1f}% /{plain_eff:8.1f}%"
            f" {filt.hit_rate_percent:9.1f}% /{filt_eff:8.1f}%   {winner}"
        )
    print()
    print(f"filter wins on {filter_wins}/{len(PAPER_BENCHMARKS)} benchmarks at this budget.")
    print("Try a generous budget (e.g. 2.5) to see the paper's other regime,")
    print("where unfiltered streams' extra hits are worth their bandwidth.")


if __name__ == "__main__":
    main()
