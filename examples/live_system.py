"""Step the full memory system reference by reference.

Uses :class:`repro.sim.MemorySystem` — the per-access composition of
Figure 1 — to watch individual references get serviced by the L1, the
streams, or main memory, then prints end-to-end statistics including a
simple average-memory-access-time estimate.

Usage:
    python examples/live_system.py
"""

from repro import AccessKind, MemorySystem, ServiceLevel, StreamConfig


def main() -> None:
    system = MemorySystem(stream_config=StreamConfig.filtered(n_streams=4))

    print("walking a 16-block array twice, watching each reference:")
    base = 1 << 20
    for sweep in range(2):
        levels = []
        for block in range(16):
            level = system.access(base + block * 64, AccessKind.READ)
            levels.append(
                {"l1": "L", "stream": "S", "memory": "M"}[level.value]
            )
        print(f"  sweep {sweep}: {' '.join(levels)}")
    print("  (M = memory fetch, S = stream buffer hit, L = on-chip hit)")
    print()

    # The first sweep misses everywhere; after the two-miss filter
    # preamble the streams service the rest.  The second sweep hits the
    # (64KB) on-chip cache directly.

    print("now a scattered pointer chase the prefetcher cannot help:")
    import random

    rng = random.Random(0)
    chase = [base + rng.randrange(1 << 14) * 64 for _ in range(16)]
    levels = [
        {"l1": "L", "stream": "S", "memory": "M"}[system.access(addr).value]
        for addr in chase
    ]
    print(f"  chase:   {' '.join(levels)}")
    print()

    stats = system.stats
    print(f"references        : {stats.references}")
    print(f"L1 hits           : {stats.l1_hits}")
    print(f"stream hits       : {stats.stream_hits}")
    print(f"memory fetches    : {stats.memory_fetches}")
    print(f"serviced on chip  : {100 * stats.serviced_on_chip_fraction:.0f}%")
    print(f"AMAT (1/3/50 cyc) : {stats.amat():.1f} cycles")


if __name__ == "__main__":
    main()
