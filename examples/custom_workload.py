"""Build and evaluate your own workload model.

Defines a small out-of-place matrix transpose — reads are row-major
(unit stride), writes are column-major (constant non-unit stride) — and
shows how each stream-buffer feature handles each half of its traffic.

This is the template for adding new benchmark models: subclass
``Workload``, allocate arrays from ``self.arena``, compose the trace
from the kernels, and (optionally) ``@register`` it so the CLI and
experiment drivers can find it.

Usage:
    python examples/custom_workload.py
"""

from repro import StreamConfig
from repro.sim import MissTraceCache, run_result
from repro.trace.events import Trace
from repro.workloads.base import BenchmarkInfo, Workload
from repro.workloads.kernels import ascending, loop, read, strided, write


class Transpose(Workload):
    """B = A^T over n x n doubles: half unit stride, half large stride."""

    info = BenchmarkInfo(
        name="transpose-example",
        suite="micro",
        description="Out-of-place matrix transpose",
    )

    N = 512  # 2MB per matrix

    def build(self) -> Trace:
        n = self.dim(self.N, minimum=64)
        a = self.arena.alloc_words("A", n * n)
        b = self.arena.alloc_words("B", n * n)
        row_bytes = n * 8
        phases = []
        for j in range(n):
            phases.append(
                loop(
                    [
                        # Read row j of A: unit stride.
                        read(ascending(a.base + j * row_bytes, n)),
                        # Write column j of B: stride of one row.
                        write(strided(b.base + j * 8, n, row_bytes)),
                    ]
                )
            )
        return Trace.concat(phases)


def main() -> None:
    workload = Transpose()
    cache = MissTraceCache()

    print(f"transpose of {workload.dim(Transpose.N)}^2 doubles "
          f"({workload.data_set_bytes / (1 << 20):.0f} MB total)")
    print()
    for label, config in {
        "no filter": StreamConfig.jouppi(),
        "unit filter": StreamConfig.filtered(),
        "unit filter + czone detector": StreamConfig.non_unit(czone_bits=19),
    }.items():
        result = run_result(workload, config, cache=cache)
        print(
            f"{label:30s} hit {result.hit_rate_percent:5.1f}%   "
            f"EB {result.eb_percent:6.1f}%"
        )
    print()
    print("Reading rows streams perfectly; the column writes are invisible")
    print("to unit-stride streams but constant-stride, so the czone")
    print("detector recovers them - the fftpde/appsp story in miniature.")


if __name__ == "__main__":
    main()
