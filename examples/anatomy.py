"""Dissect a benchmark: why does it get the hit rate it gets?

Combines the diagnostic layers on one workload: the miss-stream run
decomposition, the closed-form predictions, the simulated configurations
and the stream-length buckets — the full chain from access pattern to
paper-style result.

Usage:
    python examples/anatomy.py [workload]
"""

import sys

from repro.analysis import decompose_runs, predict_no_filter, predict_with_filter
from repro.core import StreamConfig, StreamPrefetcher
from repro.core.lengths import LENGTH_BUCKETS, bucket_label
from repro.sim import MissTraceCache


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "appbt"
    cache = MissTraceCache()
    miss_trace, summary = cache.get(workload)

    print(f"workload: {workload}")
    print(f"  {summary.trace_length} references -> {summary.misses} L1 misses "
          f"({100 * summary.miss_rate:.1f}%), {summary.writebacks} write-backs")
    print()

    unbounded = decompose_runs(miss_trace)
    bounded = decompose_runs(miss_trace, max_open=10)
    print("miss-stream anatomy (interleaved-run decomposition):")
    print(f"  mean run length    : {unbounded.mean_length:.1f} blocks "
          f"(ideal engine) / {bounded.mean_length:.1f} (10 open runs)")
    for label, pred in (("isolated (1)", lambda l: l == 1),
                        ("short (2-5)", lambda l: 2 <= l <= 5),
                        ("medium (6-20)", lambda l: 6 <= l <= 20),
                        ("long (>20)", lambda l: l > 20)):
        print(f"  misses in {label:13s}: {100 * bounded.misses_in_runs(pred):5.1f}%")
    print()

    print("closed-form predictions (ten open runs):")
    plain_pred = predict_no_filter(bounded)
    filt_pred = predict_with_filter(bounded)
    print(f"  no filter   : hit {plain_pred.hit_rate_percent:5.1f}%  EB {plain_pred.eb:6.1f}%")
    print(f"  with filter : hit {filt_pred.hit_rate_percent:5.1f}%  EB {filt_pred.eb:6.1f}%")
    print()

    print("simulation (10 streams, depth 2):")
    for label, config in (("no filter", StreamConfig.jouppi()),
                          ("with filter", StreamConfig.filtered()),
                          ("filter + czone", StreamConfig.non_unit(czone_bits=19))):
        stats = StreamPrefetcher(config).run(miss_trace)
        print(f"  {label:14s}: hit {stats.hit_rate_percent:5.1f}%  "
              f"EB {stats.bandwidth.eb_measured:6.1f}%")
    stats = StreamPrefetcher(StreamConfig.jouppi()).run(miss_trace)
    row = stats.lengths.as_row()
    print()
    print("stream lengths, % of hits (Table 3 buckets):")
    for bucket, value in zip(LENGTH_BUCKETS, row):
        bar = "#" * int(round(value / 2))
        print(f"  {bucket_label(bucket):>6s} |{bar} {value:.0f}%")


if __name__ == "__main__":
    main()
