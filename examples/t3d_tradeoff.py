"""Price the paper's conclusion: streams + bandwidth vs a big L2.

The paper's target systems "have memory bandwidth sufficiently greater
than the load data requirements of the processor" (its example: the
Cray T3D, 600 MB/s of raw memory bandwidth against 320 MB/s of peak
processor load bandwidth).  This example uses the timing extension to
ask: for a given workload, at what bandwidth advantage does the
L2-less stream design beat a conventional 512KB-L2 design?

Usage:
    python examples/t3d_tradeoff.py [workload]
"""

import sys

from repro.caches.cache import CacheConfig
from repro.caches.secondary import simulate_secondary
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.sim import MissTraceCache
from repro.timing import TimingModel, l2_system_timing, stream_system_timing


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "appsp"
    cache = MissTraceCache()
    miss_trace, summary = cache.get(workload)

    streams = StreamPrefetcher(StreamConfig.non_unit(czone_bits=19)).run(miss_trace)
    l2 = simulate_secondary(
        miss_trace, CacheConfig(capacity=512 * 1024, assoc=4, block_size=64, policy="lru")
    )
    model = TimingModel()
    l2_report = l2_system_timing(summary, l2, model)

    print(f"workload: {workload}")
    print(f"  stream hit rate : {streams.hit_rate_percent:.1f}%  "
          f"(EB {streams.bandwidth.eb_measured:.0f}%)")
    print(f"  512KB L2 hit    : {100 * l2.local_hit_rate:.1f}%")
    print(f"  L2 design AMAT  : {l2_report.amat:.2f} cycles "
          f"(channel {100 * l2_report.utilisation:.0f}% busy)")
    print()
    print(f"{'bandwidth':>10s} {'stream AMAT':>12s} {'speedup':>8s}")
    crossover = None
    for factor in (0.5, 1.0, 1.5, 1.875, 2.0, 3.0, 4.0):
        report = stream_system_timing(summary, streams, model.with_bandwidth_factor(factor))
        speedup = l2_report.amat / report.amat
        marker = "  <- T3D-like ratio (600/320)" if factor == 1.875 else ""
        if crossover is None and speedup >= 1.0:
            crossover = factor
        print(f"{factor:9.2f}x {report.amat:11.2f} {speedup:8.2f}{marker}")
    print()
    if crossover is not None:
        print(f"the stream design wins from ~{crossover:g}x bandwidth onwards;")
        print("the SRAM savings of dropping the L2 are what buy that bandwidth.")
    else:
        print("the L2 design wins at every swept bandwidth: this workload's")
        print("temporal reuse is exactly what streams cannot capture.")


if __name__ == "__main__":
    main()
