"""Quickstart: simulate stream buffers behind the paper's on-chip cache.

Runs three stream-buffer configurations over one of the paper's
benchmark models (mgrid) and prints hit rates and bandwidth overheads —
the minimal end-to-end tour of the library.

Usage:
    python examples/quickstart.py [workload]
"""

import sys

from repro import StreamConfig, run_result


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mgrid"

    configs = {
        "Jouppi streams (no filter)": StreamConfig.jouppi(n_streams=10),
        "with unit-stride filter": StreamConfig.filtered(n_streams=10, entries=16),
        "with non-unit stride detector": StreamConfig.non_unit(n_streams=10, czone_bits=19),
    }

    print(f"workload: {workload} (64K I + 64K D 4-way on-chip cache, 10 streams, depth 2)")
    print()
    header = f"{'configuration':34s} {'hit rate':>9s} {'extra bandwidth':>16s}"
    print(header)
    print("-" * len(header))
    for label, config in configs.items():
        result = run_result(workload, config)
        print(
            f"{label:34s} {result.hit_rate_percent:8.1f}% "
            f"{result.eb_percent:15.1f}%"
        )
    print()
    result = run_result(workload, StreamConfig.filtered())
    print(f"primary cache: {result.l1.misses} misses over {result.l1.trace_length} references "
          f"({100 * result.l1.miss_rate:.2f}% miss rate)")
    row = result.streams.lengths.as_row()
    buckets = ("1-5", "6-10", "11-15", "16-20", ">20")
    print("stream lengths (% of hits): "
          + "  ".join(f"{b}: {v:.0f}%" for b, v in zip(buckets, row)))


if __name__ == "__main__":
    main()
