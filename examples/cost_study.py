"""The 1K-processor argument: gigabytes of SRAM or bandwidth?

Scales the per-processor design comparison up to a parallel machine
(the paper's motivating context) and prints the bill of materials each
way, plus the equal-cost performance verdict for a chosen workload.

Usage:
    python examples/cost_study.py [workload] [processors]
"""

import sys

from repro.caches.cache import CacheConfig
from repro.caches.secondary import simulate_secondary
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.costs import bandwidth_affordable, l2_design_cost, stream_design_cost
from repro.sim import MissTraceCache
from repro.timing import TimingModel, l2_system_timing, stream_system_timing

L2_MB = 2.0


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cgm"
    processors = int(sys.argv[2]) if len(sys.argv) > 2 else 1024

    l2_bill = l2_design_cost(L2_MB).scaled(processors)
    bandwidth = bandwidth_affordable(L2_MB)
    stream_bill = stream_design_cost(bandwidth).scaled(processors)

    print(f"machine: {processors} processors")
    print(f"  conventional design: {L2_MB:g}MB L2 per node")
    print(f"    -> {l2_bill.sram_mb / 1024:.1f} GB of secondary-cache SRAM machine-wide")
    print(f"    -> cost {l2_bill.total:.0f} units")
    print(f"  stream design: no L2, {bandwidth:.1f}x memory bandwidth per node")
    print(f"    -> cost {stream_bill.total:.0f} units (same by construction)")
    print()

    cache = MissTraceCache()
    miss_trace, summary = cache.get(workload)
    streams = StreamPrefetcher(StreamConfig.non_unit(czone_bits=19)).run(miss_trace)
    l2 = simulate_secondary(
        miss_trace,
        CacheConfig(capacity=int(L2_MB * (1 << 20)), assoc=4, block_size=64, policy="lru"),
        sample_every=4,
    )
    model = TimingModel()
    l2_amat = l2_system_timing(summary, l2, model).amat
    stream_amat = stream_system_timing(
        summary, streams, model.with_bandwidth_factor(bandwidth)
    ).amat

    print(f"per-node performance on {workload}:")
    print(f"  L2 design     : {100 * l2.local_hit_rate:.0f}% L2 hit, AMAT {l2_amat:.2f} cycles")
    print(f"  stream design : {streams.hit_rate_percent:.0f}% stream hit, AMAT {stream_amat:.2f} cycles")
    speedup = l2_amat / stream_amat
    print(f"  equal-cost speedup: {speedup:.2f}x "
          f"({'streams win' if speedup > 1 else 'L2 wins'})")


if __name__ == "__main__":
    main()
