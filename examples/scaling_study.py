"""The Section 8 argument, interactively: streams scale; caches don't.

Sweeps a benchmark's input size and reports, at each size, the stream
hit rate and the minimum secondary cache matching it.  On regular codes
the required cache tracks the data set while the streams stay flat —
the paper's case for spending SRAM money on memory bandwidth instead.

Usage:
    python examples/scaling_study.py [workload] [scales...]
    python examples/scaling_study.py applu 0.7 1.0 1.3
"""

import sys

from repro.sim import MissTraceCache, format_size, min_matching_l2_size


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "applu"
    scales = [float(s) for s in sys.argv[2:]] or [0.7, 1.0, 1.3]

    cache = MissTraceCache()
    print(f"workload: {workload}   (10 streams, 16-entry unit + czone filters)")
    print()
    header = f"{'scale':>6s} {'data set':>10s} {'stream hit':>11s} {'matching L2':>12s}"
    print(header)
    print("-" * len(header))
    for scale in scales:
        match = min_matching_l2_size(workload, scale=scale, cache=cache)
        _, summary = cache.get(workload, scale=scale)
        print(
            f"{scale:6.2f} {summary.data_set_bytes / (1 << 20):9.2f}M "
            f"{match.stream_hit_rate_percent:10.1f}% "
            f"{format_size(match.matched_size):>12s}"
        )
    print()
    print("The stream buffers are a fixed, tiny structure (10 comparators,")
    print("10 adders, ~1.3KB of SRAM); each row's matching cache is the")
    print("SRAM you would otherwise have to buy.")


if __name__ == "__main__":
    main()
